//! `repro` — regenerate every table and figure of the SC'98 paper.
//!
//! ```text
//! repro [--reduced] [--no-cache] [--timing] [--csv DIR] [--out FILE] [SECTION...]
//!
//! SECTIONs: tables (default), figures, utilization, autopar, scalability,
//!           sensitivity, all
//! ```
//!
//! With no arguments the binary measures the paper-scale workload,
//! calibrates the machine models, and prints Tables 1–12 with the paper's
//! published value next to every modeled value, followed by ASCII
//! renditions of Figures 1–4. `--reduced` uses the smaller test workload
//! (same structure, faster). `--csv DIR` additionally writes one CSV per
//! table.
//!
//! The expensive workload measurement is memoized on disk (see
//! `eval_core::cache`); `--no-cache` forces a fresh measurement without
//! reading or writing snapshots. `--timing` times the harness's own
//! parallelization (1 host thread vs all of them), verifies the outputs
//! are byte-identical, and writes the report to `BENCH_harness.json`.

use eval_core::cache;
use eval_core::experiments::{Experiments, Figure};
use eval_core::workload::{Workload, WorkloadScale};
use mta_sim::kernels::measure_utilization_sweep;
use mta_sim::MtaConfig;
use std::io::Write;
use std::time::Instant;
use sthreads::{Schedule, ThreadPool};

struct Options {
    scale: WorkloadScale,
    csv_dir: Option<String>,
    json_file: Option<String>,
    out_file: Option<String>,
    use_cache: bool,
    timing: bool,
    n_threads: Option<usize>,
    sections: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: WorkloadScale::Paper,
        csv_dir: None,
        json_file: None,
        out_file: None,
        use_cache: true,
        timing: false,
        n_threads: None,
        sections: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => opts.scale = WorkloadScale::Reduced,
            "--csv" => opts.csv_dir = args.next(),
            "--json" => opts.json_file = args.next(),
            "--out" => opts.out_file = args.next(),
            "--no-cache" => opts.use_cache = false,
            "--timing" => opts.timing = true,
            "--threads" => {
                opts.n_threads =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    }))
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--reduced] [--no-cache] [--timing] [--threads N] [--csv DIR] \
                     [--json FILE] [--out FILE] \
                     [tables|figures|utilization|autopar|scalability|all]..."
                );
                std::process::exit(0);
            }
            s => opts.sections.push(s.to_string()),
        }
    }
    if opts.sections.is_empty() {
        opts.sections.push("all".to_string());
    }
    opts
}

fn want(opts: &Options, section: &str) -> bool {
    opts.sections.iter().any(|s| s == section || s == "all")
}

/// Stream counts reported by the utilization section.
const UTIL_STREAMS: [usize; 11] = [1, 2, 4, 8, 16, 32, 48, 64, 80, 100, 128];

fn util_cfg() -> MtaConfig {
    MtaConfig {
        mem_words: 1 << 20,
        ..MtaConfig::tera(1)
    }
}

fn utilization_report(n_threads: usize) -> String {
    let mut out = String::new();
    out.push_str("Processor utilization vs hardware streams (mta-sim, 20% memory mix)\n");
    out.push_str("  paper Section 5/7: single stream ~5%; ~80 streams for full utilization\n");
    out.push_str("  streams  measured   model min(1, s/L)\n");
    // mixed_kernel with alu_per_iter = 3: 5 instructions per iteration,
    // 1 load => L = (4*21 + 70)/5 = 30.8 cycles.
    let l = (4.0 * 21.0 + 70.0) / 5.0;
    let measured = measure_utilization_sweep(&util_cfg(), &UTIL_STREAMS, 400, 3, n_threads);
    for (&s, u) in UTIL_STREAMS.iter().zip(measured) {
        let model = (s as f64 / l).min(1.0);
        out.push_str(&format!("  {s:>7}  {u:>8.3}   {model:>8.3}\n"));
    }
    out
}

/// One row of the `--timing` report: the same phase run on one host
/// thread and on all of them, producing identical output.
#[derive(serde::Serialize)]
struct PhaseTiming {
    phase: String,
    seq_seconds: f64,
    par_seconds: f64,
    speedup: f64,
    identical_output: bool,
}

#[derive(serde::Serialize)]
struct TimingReport {
    scale: String,
    host_threads: usize,
    phases: Vec<PhaseTiming>,
}

/// Time `f` once and return (seconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let v = f();
    (start.elapsed().as_secs_f64(), v)
}

/// Run every parallelized harness phase sequentially and in parallel,
/// check bit-identity, and write `BENCH_harness.json`.
fn timing_report(scale: WorkloadScale, n_threads: usize) -> String {
    // Pre-spawn the persistent pool's workers so the parallel timings
    // measure steady-state dispatch (wakeups), not one-time thread
    // creation — the paper's own distinction between stream creation and
    // CreateThread (§7).
    ThreadPool::global().warm(n_threads);
    let mut phases = Vec::new();
    let mut record = |phase: &str, seq: f64, par: f64, identical: bool| {
        phases.push(PhaseTiming {
            phase: phase.to_string(),
            seq_seconds: seq,
            par_seconds: par,
            speedup: seq / par,
            identical_output: identical,
        });
    };

    let (t_seq, w_seq) = timed(|| Workload::build_with(scale, 1, Schedule::Dynamic));
    let (t_par, w_par) = timed(|| Workload::build_with(scale, n_threads, Schedule::Dynamic));
    record("workload measurement", t_seq, t_par, w_seq == w_par);

    let exps = Experiments::new(w_par);
    let csv = |tables: &[eval_core::Table]| -> String {
        tables
            .iter()
            .map(|t| t.to_csv())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (t_seq, tab_seq) = timed(|| exps.all_tables_with_threads(1));
    let (t_par, tab_par) = timed(|| exps.all_tables_with_threads(n_threads));
    record(
        "table generation",
        t_seq,
        t_par,
        csv(&tab_seq) == csv(&tab_par),
    );

    let (t_seq, u_seq) = timed(|| measure_utilization_sweep(&util_cfg(), &UTIL_STREAMS, 400, 3, 1));
    let (t_par, u_par) =
        timed(|| measure_utilization_sweep(&util_cfg(), &UTIL_STREAMS, 400, 3, n_threads));
    record("utilization sweep", t_seq, t_par, u_seq == u_par);

    let report = TimingReport {
        scale: format!("{scale:?}"),
        host_threads: n_threads,
        phases,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize timing report");
    std::fs::write("BENCH_harness.json", &json).expect("write BENCH_harness.json");
    eprintln!("wrote BENCH_harness.json");

    let mut out = String::new();
    out.push_str(&format!(
        "Harness self-timing ({:?} scale, {} host threads; outputs verified identical)\n",
        scale, report.host_threads
    ));
    out.push_str("  phase                  1 thread      parallel   speedup  identical\n");
    for p in &report.phases {
        out.push_str(&format!(
            "  {:<20} {:>8.3} s   {:>8.3} s   {:>6.2}x  {}\n",
            p.phase, p.seq_seconds, p.par_seconds, p.speedup, p.identical_output
        ));
    }
    out
}

fn main() {
    let opts = parse_args();
    let n_threads = opts
        .n_threads
        .unwrap_or_else(|| ThreadPool::global().n_threads());
    let mut out = String::new();

    eprintln!(
        "loading workload ({:?} scale) and calibrating models...",
        opts.scale
    );
    let (workload, cal, status) =
        cache::load_or_measure_in(&cache::cache_dir(), opts.scale, opts.use_cache);
    eprintln!(
        "workload: {status:?} (snapshot dir {})",
        cache::cache_dir().display()
    );
    let exps = Experiments { workload, cal };
    out.push_str(&format!(
        "Reproduction of \"An Initial Evaluation of the Tera Multithreaded Architecture\n\
         and Programming System Using the C3I Parallel Benchmark Suite\" (SC'98).\n\
         Workload scale: {:?}. Calibration: S_TA={:.1} S_TM={:.1} eta2={:.3} kappa={:.1}\n\n",
        exps.workload.scale,
        exps.cal.s_ta,
        exps.cal.s_tm,
        exps.cal.tera.eta2,
        exps.cal.tera.spawn_cycles_per_task
    ));

    if want(&opts, "tables") {
        let tables = exps.all_tables();
        if let Some(path) = &opts.json_file {
            let json = serde_json::to_string_pretty(&tables).expect("serialize tables");
            std::fs::write(path, json).expect("write json");
            eprintln!("wrote {path}");
        }
        for t in &tables {
            out.push_str(&t.render());
            out.push('\n');
            if let Some(dir) = &opts.csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{dir}/{}.csv", t.id.to_lowercase().replace(' ', "_"));
                std::fs::write(&path, t.to_csv()).expect("write csv");
            }
        }
    }

    if want(&opts, "figures") {
        for f in [
            Figure::ThreatPPro,
            Figure::ThreatExemplar,
            Figure::TerrainPPro,
            Figure::TerrainExemplar,
        ] {
            out.push_str(&exps.figure(f));
            out.push('\n');
        }
    }

    if want(&opts, "autopar") {
        out.push_str("Automatic parallelization (modeled Tera/Exemplar compilers):\n");
        out.push_str(&exps.autopar_report().report.to_string());
        out.push('\n');
    }

    if want(&opts, "scalability") {
        out.push_str(
            &exps
                .scalability_projection(&[1, 2, 4, 8, 16, 32, 64, 128, 256])
                .render(),
        );
        out.push('\n');
    }

    if want(&opts, "sensitivity") {
        out.push_str(&exps.sensitivity().render());
        out.push('\n');
    }

    if want(&opts, "utilization") {
        out.push_str(&utilization_report(n_threads));
        out.push('\n');
    }

    if opts.timing {
        out.push_str(&timing_report(opts.scale, n_threads));
        out.push('\n');
    }

    print!("{out}");
    if let Some(path) = &opts.out_file {
        let mut f = std::fs::File::create(path).expect("create out file");
        f.write_all(out.as_bytes()).expect("write out file");
        eprintln!("wrote {path}");
    }
}
