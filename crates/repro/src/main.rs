//! `repro` — regenerate every table and figure of the SC'98 paper.
//!
//! ```text
//! repro [--reduced] [--no-cache] [--timing] [--profile] [--gate FILE]
//!       [--csv DIR] [--out FILE] [SECTION...]
//! repro --serve ADDR [--reduced] [--threads N]
//! repro --load ADDR [--requests N] [--conns N] [--mix-seed S] [--stop-server]
//!
//! SECTIONs: tables (default), figures, utilization, autopar, table-auto,
//!           scalability, sensitivity, all
//! ```
//!
//! With no arguments the binary measures the paper-scale workload,
//! calibrates the machine models, and prints Tables 1–12 with the paper's
//! published value next to every modeled value, followed by ASCII
//! renditions of Figures 1–4. `--reduced` uses the smaller test workload
//! (same structure, faster). `--csv DIR` additionally writes one CSV per
//! table.
//!
//! The expensive workload measurement is memoized on disk (see
//! `eval_core::cache`); `--no-cache` forces a fresh measurement without
//! reading or writing snapshots. `--timing` times the harness's own
//! parallelization (1 host thread vs all of them), verifies the outputs
//! are byte-identical, and writes the report to `BENCH_harness.json`.
//!
//! `--profile` turns on the `sthreads::stats` nano-timing tier for the
//! whole run and appends an observability report: where the pool's time
//! went (dispatch, imbalance, useful work), the work-stealing counters
//! (steals, stolen items, failed steals, victim misses) with the last
//! timed region's per-worker busy breakdown, plus a sample `mta-sim`
//! run's machine counters (issue slots, bank-queue histogram, full/empty
//! retry traffic).
//!
//! `--serve ADDR` loads the workload once and serves scenario-evaluation
//! requests over a socket (Unix path if ADDR contains `/`, else TCP)
//! through `eval_core::service`'s bounded batching queue; `--load ADDR`
//! replays a fuzzer-generated request mix against such a server, checks
//! every response against a direct sequential evaluation, and writes
//! `BENCH_service.json` (p50/p90/p99 latency, throughput, and the
//! bit-identity verdict).
//!
//! `--gate FILE` parses FILE as either a `BENCH_harness.json` or a
//! `BENCH_service.json` (dispatching on shape), checks it against that
//! report's invariants (every phase bit-identical and speedups at their
//! gates; or full completion, ordered positive percentiles and
//! `identical_output: true`), and exits non-zero on any violation — this
//! is what `ci.sh` runs.
//!
//! Every flag that takes an operand (`--csv`, `--json`, `--out`,
//! `--gate`, `--fuzz`, `--fuzz-seed`, `--threads`, `--serve`, `--load`,
//! `--requests`, `--conns`, `--mix-seed`) exits with the usage message
//! when the operand is missing or flag-like — a bare `repro --json` is a
//! mistake, not a request to skip JSON output.

use eval_core::cache;
use eval_core::experiments::{self, Figure, HarnessReport};
use eval_core::service::SERVICE_SCHEMA;
use eval_core::workload::WorkloadScale;
use eval_core::{Client, Evaluator, Server, Service, ServiceConfig, ServiceReport};
use mta_sim::kernels::measure_utilization_sweep;
use std::io::Write;
use std::time::Instant;
use sthreads::ThreadPool;

#[derive(Debug)]
struct Options {
    scale: WorkloadScale,
    csv_dir: Option<String>,
    json_file: Option<String>,
    out_file: Option<String>,
    use_cache: bool,
    timing: bool,
    profile: bool,
    gate: Option<String>,
    n_threads: Option<usize>,
    fuzz: Option<usize>,
    fuzz_seed: u64,
    serve: Option<String>,
    load: Option<String>,
    requests: usize,
    conns: usize,
    mix_seed: u64,
    stop_server: bool,
    sections: Vec<String>,
}

const USAGE: &str = "usage: repro [--reduced] [--no-cache] [--timing] [--profile] \
     [--gate FILE] [--fuzz N] [--fuzz-seed S] [--threads N] [--csv DIR] \
     [--json FILE] [--out FILE] [--serve ADDR] \
     [--load ADDR [--requests N] [--conns N] [--mix-seed S] [--stop-server]] \
     [tables|figures|utilization|autopar|table-auto|scalability|sensitivity|all]...";

/// The operand of a value-taking flag. Missing operands and operands
/// that look like the next flag are both hard errors: `repro --json`
/// must not silently behave like `repro`.
fn operand(
    flag: &str,
    what: &str,
    args: &mut impl Iterator<Item = String>,
) -> Result<String, String> {
    match args.next() {
        Some(v) if !v.starts_with("--") => Ok(v),
        Some(v) => Err(format!("{flag} requires {what}, got flag '{v}'")),
        None => Err(format!("{flag} requires {what}")),
    }
}

/// [`operand`], parsed into a numeric type.
fn parsed_operand<T: std::str::FromStr>(
    flag: &str,
    what: &str,
    args: &mut impl Iterator<Item = String>,
) -> Result<T, String> {
    let v = operand(flag, what, args)?;
    v.parse()
        .map_err(|_| format!("{flag}: cannot parse '{v}' as {what}"))
}

fn parse_args_from(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        scale: WorkloadScale::Paper,
        csv_dir: None,
        json_file: None,
        out_file: None,
        use_cache: true,
        timing: false,
        profile: false,
        gate: None,
        n_threads: None,
        fuzz: None,
        fuzz_seed: 1,
        serve: None,
        load: None,
        requests: 64,
        conns: 4,
        mix_seed: 1,
        stop_server: false,
        sections: Vec::new(),
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => opts.scale = WorkloadScale::Reduced,
            "--csv" => opts.csv_dir = Some(operand("--csv", "a directory", &mut args)?),
            "--json" => opts.json_file = Some(operand("--json", "a file path", &mut args)?),
            "--out" => opts.out_file = Some(operand("--out", "a file path", &mut args)?),
            "--no-cache" => opts.use_cache = false,
            "--timing" => opts.timing = true,
            "--profile" => opts.profile = true,
            "--gate" => {
                opts.gate = Some(operand(
                    "--gate",
                    "a BENCH_harness.json or BENCH_service.json path",
                    &mut args,
                )?)
            }
            "--fuzz" => opts.fuzz = Some(parsed_operand("--fuzz", "a case count", &mut args)?),
            "--fuzz-seed" => {
                opts.fuzz_seed = parsed_operand("--fuzz-seed", "a u64 seed", &mut args)?
            }
            "--threads" => {
                opts.n_threads = Some(parsed_operand(
                    "--threads",
                    "a positive integer",
                    &mut args,
                )?)
            }
            "--serve" => {
                opts.serve = Some(operand(
                    "--serve",
                    "a socket address (host:port or unix path)",
                    &mut args,
                )?)
            }
            "--load" => {
                opts.load = Some(operand(
                    "--load",
                    "a socket address (host:port or unix path)",
                    &mut args,
                )?)
            }
            "--requests" => {
                opts.requests = parsed_operand("--requests", "a request count", &mut args)?
            }
            "--conns" => opts.conns = parsed_operand("--conns", "a connection count", &mut args)?,
            "--mix-seed" => opts.mix_seed = parsed_operand("--mix-seed", "a u64 seed", &mut args)?,
            "--stop-server" => opts.stop_server = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            s if s.starts_with('-') => return Err(format!("unknown flag '{s}'")),
            s => opts.sections.push(s.to_string()),
        }
    }
    if opts.sections.is_empty() {
        opts.sections.push("all".to_string());
    }
    Ok(opts)
}

fn parse_args() -> Options {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("repro: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn want(opts: &Options, section: &str) -> bool {
    opts.sections.iter().any(|s| s == section || s == "all")
}

/// `--gate FILE`: validate a benchmark report and exit. The file's shape
/// picks the schema: a parseable `BENCH_service.json` is checked against
/// the service gate, anything else against the harness invariants. Any
/// problem — unreadable file, schema mismatch, invariant violation —
/// exits 1 with every violation listed, so CI output shows the whole
/// picture at once.
fn run_gate(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Ok(report) = serde_json::from_str::<ServiceReport>(&text) {
        match report.validate() {
            Ok(()) => {
                println!(
                    "gate: {path} OK — service bench: {} requests over {} connections, \
                     p50 {:.3} ms / p99 {:.3} ms, {:.1} req/s, every response bit-identical \
                     to direct evaluation",
                    report.requests,
                    report.connections,
                    report.p50_ms,
                    report.p99_ms,
                    report.throughput_rps,
                );
                std::process::exit(0);
            }
            Err(errs) => {
                for e in &errs {
                    eprintln!("gate: FAIL: {e}");
                }
                std::process::exit(1);
            }
        }
    }
    let report: HarnessReport = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "gate: {path} matches neither the BENCH_harness.json nor the \
                 BENCH_service.json ({SERVICE_SCHEMA}) schema: {e}"
            );
            std::process::exit(1);
        }
    };
    match report.validate() {
        Ok(()) => {
            let tg = report
                .phases
                .iter()
                .find(|p| p.phase == "table generation")
                .expect("validate() guarantees the phase exists");
            let fg = report
                .phases
                .iter()
                .find(|p| p.phase == "fine_grain")
                .expect("validate() guarantees the phase exists");
            let mp = report
                .phases
                .iter()
                .find(|p| p.phase == "mta_par")
                .expect("validate() guarantees the phase exists");
            println!(
                "gate: {path} OK — {} phases identical, table generation {:.2}x (gate {}), \
                 fine_grain stealing vs shared queue {:.2}x (gate {}), \
                 mta_par parallel tick vs sequential {:.2}x (gate {}), \
                 kernels vs scalar baseline {:.2}x (gate {})",
                report.phases.len(),
                tg.speedup,
                experiments::TABLE_GEN_SPEEDUP_GATE,
                fg.speedup,
                experiments::FINE_GRAIN_SPEEDUP_GATE,
                mp.speedup,
                experiments::MTA_PAR_SPEEDUP_GATE,
                report.kernels.speedup,
                experiments::KERNELS_SPEEDUP_GATE,
            );
            std::process::exit(0);
        }
        Err(errs) => {
            for e in &errs {
                eprintln!("gate: FAIL: {e}");
            }
            std::process::exit(1);
        }
    }
}

/// `--serve ADDR`: load the workload **once** into a long-lived
/// [`Evaluator`], put the bounded batching [`Service`] in front of it,
/// and serve the framed-JSON protocol until a client sends `Shutdown`.
fn run_serve(addr: &str, scale: WorkloadScale, use_cache: bool, n_threads: usize) -> ! {
    eprintln!("serve: loading workload ({scale:?} scale) and calibrating models...");
    let (evaluator, status) = Evaluator::load(scale, use_cache);
    eprintln!(
        "serve: workload {status:?} (snapshot dir {})",
        cache::cache_dir().display()
    );
    let config = ServiceConfig {
        n_threads,
        ..ServiceConfig::default()
    };
    let service = Service::start(evaluator, config);
    let server = match Server::bind(addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("serving on {}", server.local_addr());
    std::io::stdout().flush().ok();
    match server.run() {
        Ok(()) => {
            eprintln!("serve: shutdown complete");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("serve: accept loop failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Per-connection tally from one load-generator thread.
#[derive(Default)]
struct ConnStats {
    latencies_ns: Vec<u64>,
    rejected: usize,
    completed: usize,
    mismatches: Vec<String>,
}

/// Replay the slice of `mix` owned by connection `conn` (indices
/// congruent to `conn` mod `stride`) over one connection. Overload
/// rejections back off by the server's hint and retry the same request;
/// every completed response is compared byte-for-byte against the local
/// direct evaluation.
fn replay_connection(
    addr: &str,
    mix: &[eval_core::EvalRequest],
    evaluator: &Evaluator,
    conn: usize,
    stride: usize,
) -> ConnStats {
    let mut client = Client::connect(addr)
        .unwrap_or_else(|e| panic!("load: connection {conn} cannot reach {addr}: {e}"));
    let mut stats = ConnStats::default();
    let mut i = conn;
    while i < mix.len() {
        let req = &mix[i];
        loop {
            let t = Instant::now();
            let resp = client
                .call(req.clone())
                .unwrap_or_else(|e| panic!("load: connection {conn} request {i} failed: {e}"));
            match resp.error {
                Some(err) if err.kind == "overloaded" => {
                    stats.rejected += 1;
                    let back_off = err.retry_after_ms.unwrap_or(5).max(1);
                    std::thread::sleep(std::time::Duration::from_millis(back_off));
                }
                Some(err) => {
                    stats.mismatches.push(format!(
                        "request {i}: server error {}: {}",
                        err.kind, err.message
                    ));
                    break;
                }
                None => {
                    stats.latencies_ns.push(t.elapsed().as_nanos() as u64);
                    stats.completed += 1;
                    let served = resp.ok.unwrap_or_default();
                    match evaluator.evaluate(req) {
                        Ok(expected) if expected == served => {}
                        Ok(expected) => stats.mismatches.push(format!(
                            "request {i}: served response differs from direct evaluation \
                             ({} vs {} bytes)",
                            served.len(),
                            expected.len()
                        )),
                        Err(e) => stats
                            .mismatches
                            .push(format!("request {i}: direct evaluation failed: {e}")),
                    }
                    break;
                }
            }
        }
        i += stride;
    }
    stats
}

/// Exact percentile over a sorted latency list (nearest-rank), in ms.
fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

/// `--load ADDR`: replay a seeded request mix against a running server,
/// verify bit-identity against direct sequential evaluation, and write
/// `BENCH_service.json`. Exits non-zero if any response differed or any
/// request was dropped.
fn run_load(addr: &str, opts: &Options) -> ! {
    let requests = opts.requests;
    let conns = opts.conns.clamp(1, requests.max(1));
    eprintln!(
        "load: {requests} requests over {conns} connections (mix seed {}) against {addr}",
        opts.mix_seed
    );
    // The reference evaluator loads the same snapshot (same scale, same
    // cache dir): workload measurement is deterministic, so the direct
    // sequential evaluation here is the bit-exact oracle for every
    // served response.
    let (evaluator, status) = Evaluator::load(opts.scale, opts.use_cache);
    eprintln!("load: reference workload {status:?}");
    let mix = c3i_fuzz::generate_mix(opts.mix_seed, requests);

    let t0 = Instant::now();
    let per_conn: Vec<ConnStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let mix = &mix;
                let evaluator = &evaluator;
                s.spawn(move || replay_connection(addr, mix, evaluator, c, conns))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection thread panicked"))
            .collect()
    });
    let wall = t0.elapsed();

    if opts.stop_server {
        match Client::connect(addr).map(|mut c| c.shutdown_server()) {
            Ok(Ok(_)) => eprintln!("load: server acknowledged shutdown"),
            Ok(Err(e)) => eprintln!("load: shutdown request failed: {e}"),
            Err(e) => eprintln!("load: cannot reconnect for shutdown: {e}"),
        }
    }

    let mut latencies: Vec<u64> = per_conn
        .iter()
        .flat_map(|c| c.latencies_ns.clone())
        .collect();
    latencies.sort_unstable();
    let completed: usize = per_conn.iter().map(|c| c.completed).sum();
    let rejected: usize = per_conn.iter().map(|c| c.rejected).sum();
    let mismatches: Vec<&String> = per_conn.iter().flat_map(|c| &c.mismatches).collect();

    let report = ServiceReport {
        schema: SERVICE_SCHEMA.to_string(),
        scale: format!("{:?}", opts.scale),
        requests,
        completed,
        rejected,
        connections: conns,
        mix_seed: opts.mix_seed,
        p50_ms: percentile_ms(&latencies, 0.50),
        p90_ms: percentile_ms(&latencies, 0.90),
        p99_ms: percentile_ms(&latencies, 0.99),
        max_ms: latencies.last().map_or(0.0, |&ns| ns as f64 / 1e6),
        throughput_rps: completed as f64 / wall.as_secs_f64().max(1e-9),
        identical_output: mismatches.is_empty(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize service report");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    eprintln!("wrote BENCH_service.json");
    print!("{}", report.render());
    for m in mismatches.iter().take(10) {
        eprintln!("load: MISMATCH: {m}");
    }
    if mismatches.len() > 10 {
        eprintln!("load: ... and {} more mismatches", mismatches.len() - 10);
    }
    if let Err(errs) = report.validate() {
        for e in &errs {
            eprintln!("load: note (would fail --gate): {e}");
        }
    }
    if mismatches.is_empty() && completed == requests {
        std::process::exit(0);
    }
    std::process::exit(1);
}

fn utilization_report(n_threads: usize) -> String {
    let mut out = String::new();
    out.push_str("Processor utilization vs hardware streams (mta-sim, 20% memory mix)\n");
    out.push_str("  paper Section 5/7: single stream ~5%; ~80 streams for full utilization\n");
    out.push_str("  streams  measured   model min(1, s/L)\n");
    // mixed_kernel with alu_per_iter = 3: 5 instructions per iteration,
    // 1 load => L = (4*21 + 70)/5 = 30.8 cycles.
    let l = (4.0 * 21.0 + 70.0) / 5.0;
    let measured = measure_utilization_sweep(
        &experiments::util_cfg(),
        &experiments::UTIL_STREAMS,
        400,
        3,
        n_threads,
    );
    for (&s, u) in experiments::UTIL_STREAMS.iter().zip(measured) {
        let model = (s as f64 / l).min(1.0);
        out.push_str(&format!("  {s:>7}  {u:>8.3}   {model:>8.3}\n"));
    }
    out
}

/// The `--profile` report: process-lifetime pool counters (the always-on
/// tier plus the nano-timing tier enabled at startup) and a sample
/// simulator run's structured machine counters.
fn profile_report() -> String {
    use sthreads::stats;
    let s = stats::snapshot();
    let mut out = String::new();
    out.push_str("Observability profile (sthreads::stats, process lifetime)\n");
    out.push_str(&format!(
        "  pool regions          {:>10}  (nested fallback {}, serial cutoff {})\n",
        s.regions, s.nested_regions, s.serial_cutoff_regions
    ));
    out.push_str(&format!(
        "  tasks / batches       {:>10} / {} (mean batch {:.1} tasks)\n",
        s.tasks,
        s.batches,
        s.mean_batch_items()
    ));
    out.push_str(&format!(
        "  worker parks / wakes  {:>10} / {}\n",
        s.parks, s.wakes
    ));
    out.push_str(&format!(
        "  dispatch / imbalance  {:>10.3} ms / {:.3} ms  (floor {} ns/region)\n",
        s.dispatch_ns as f64 / 1e6,
        s.imbalance_ns as f64 / 1e6,
        stats::dispatch_floor_ns()
    ));
    out.push_str(&format!(
        "  busy / idle           {:>10.3} ms / {:.3} ms\n",
        s.busy_ns as f64 / 1e6,
        s.idle_ns as f64 / 1e6
    ));
    out.push_str(&format!(
        "  steals / items        {:>10} / {} (mean {:.1} items/steal)\n",
        s.steals,
        s.stolen_items,
        s.mean_stolen_items()
    ));
    out.push_str(&format!(
        "  steal fails / misses  {:>10} / {} (contention {:.1}%)\n",
        s.steal_fails,
        s.victim_misses,
        100.0 * s.steal_contention()
    ));
    let lat = stats::service_latency();
    if lat.count() > 0 {
        out.push_str(&format!(
            "  service latency       {:>10} requests, p50 <= {:.3} ms, p99 <= {:.3} ms\n",
            lat.count(),
            lat.quantile_ns(0.50) as f64 / 1e6,
            lat.quantile_ns(0.99) as f64 / 1e6,
        ));
    }
    let busy = stats::last_region_worker_busy();
    if !busy.is_empty() {
        let max = busy.iter().copied().max().unwrap_or(0).max(1) as f64;
        out.push_str("  last timed region, per-worker busy (caller first):\n");
        for (w, &ns) in busy.iter().enumerate() {
            out.push_str(&format!(
                "    worker {w:>2}  {:>10.3} ms  {:.0}%\n",
                ns as f64 / 1e6,
                100.0 * ns as f64 / max
            ));
        }
    }

    // One deterministic simulator run, profiled through SimStats: 32
    // streams of the standard utilization mix plus a fetch-add hot word.
    let (_, r) = mta_sim::kernels::run_kernel(
        experiments::util_cfg(),
        mta_sim::kernels::mixed_kernel(32, 400, 3, 4096),
        &[],
    );
    let st = &r.stats;
    out.push_str("\nSimulator machine counters (mixed kernel, 32 streams, 1 processor)\n");
    out.push_str(&format!(
        "  cycles / instructions {:>10} / {}  (utilization {:.1}%)\n",
        r.cycles,
        st.instructions(),
        100.0 * r.utilization()
    ));
    let active_slots: usize = st
        .streams
        .issued_per_slot
        .iter()
        .map(|p| p.iter().filter(|&&n| n > 0).count())
        .sum();
    out.push_str(&format!(
        "  issue slots used      {:>10}  (peak live {:?})\n",
        active_slots, st.streams.peak_live_per_processor
    ));
    out.push_str(&format!(
        "  threads               {:>10} forks, {} soft spawns\n",
        st.threads.forks, st.threads.soft_spawns
    ));
    out.push_str(&format!(
        "  full/empty sync       {:>10} retries, {} wakes, {} reparks\n",
        st.sync.blocked, st.sync.wakes, st.sync.reparks
    ));
    out.push_str(&format!(
        "  memory accesses       {:>10}  ({:.1}% queued; {} bank-queue cycles)\n",
        st.memory.accesses,
        100.0 * st.memory.queued_fraction(),
        st.memory.bank_queue_cycles
    ));
    out.push_str(&format!(
        "  queue-wait histogram  {:>10?}  (cycles: 0, 1-4, 5-16, 17-64, 65+)\n",
        st.memory.queue_wait_hist
    ));
    out
}

/// `--fuzz N [--fuzz-seed S]`: run the differential fuzzing campaign and
/// exit. Every generated scenario runs through sequential oracle ×
/// {coarse, fine, chunked} × {Static, Dynamic, Stealing} × {1, 2, 8}
/// workers; any failure is ddmin-minimized, written under
/// `target/c3i-fuzz/`, and the process exits 1.
fn run_fuzz(n_cases: usize, seed: u64, reduced: bool) -> ! {
    use c3i_fuzz::CaseOutcome;
    eprintln!(
        "fuzz: {n_cases} cases, seed {seed}{} — oracle x {{coarse, fine, chunked}} x \
         {{Static, Dynamic, Stealing}} x {{1, 2, 8}} workers",
        if reduced { ", reduced sizes" } else { "" }
    );
    let report = c3i_fuzz::run_campaign(
        &c3i_fuzz::CampaignConfig {
            n_cases,
            seed,
            reduced,
        },
        |index, outcome| match outcome {
            CaseOutcome::Passed => {
                if (index + 1) % 25 == 0 {
                    eprintln!("fuzz: {}/{n_cases} cases checked", index + 1);
                }
            }
            CaseOutcome::Rejected(msg) => {
                eprintln!("fuzz: case {index} rejected by validation: {msg}")
            }
            CaseOutcome::Failed(f) => eprintln!("fuzz: case {index} FAILED: {f}"),
        },
    );
    println!(
        "fuzz: {} cases — {} passed, {} rejected, {} failed (seed {seed})",
        report.n_cases,
        report.n_passed,
        report.n_rejected,
        report.failures.len()
    );
    if report.ok() {
        std::process::exit(0);
    }
    let dir = std::path::Path::new("target/c3i-fuzz");
    std::fs::create_dir_all(dir).expect("create target/c3i-fuzz");
    for f in &report.failures {
        let path = dir.join(format!("seed{seed}-case{}.json", f.index));
        c3i_fuzz::save_case(&f.case, &path).expect("write minimized failure");
        println!(
            "fuzz: case {} minimized to {} — {}\n      reproduce: repro --fuzz {} --fuzz-seed {seed}\n      \
             pin it: fix the bug, then copy {} into tests/corpus/",
            f.index,
            path.display(),
            f.failure,
            f.index + 1,
            path.display()
        );
    }
    std::process::exit(1);
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.gate {
        run_gate(path);
    }
    if let Some(n_cases) = opts.fuzz {
        run_fuzz(
            n_cases,
            opts.fuzz_seed,
            opts.scale == WorkloadScale::Reduced,
        );
    }
    if opts.profile {
        // Enable the clock-reading tier up front so every phase below is
        // attributed, not just the --timing section.
        sthreads::stats::set_timing(true);
    }
    let n_threads = opts
        .n_threads
        .unwrap_or_else(|| ThreadPool::global().n_threads());
    if let Some(addr) = &opts.serve {
        run_serve(addr, opts.scale, opts.use_cache, n_threads);
    }
    if let Some(addr) = &opts.load {
        run_load(addr, &opts);
    }
    let mut out = String::new();

    // "table-auto" is the living auto-vs-manual comparison (ISSUE 10):
    // every cell is deterministic text and the execution checks run on
    // small fixed scenarios, so it needs no workload measurement and no
    // calibration. It renders first, and when it is the only requested
    // section repro exits here — that path is the CI smoke that diffs
    // the CSV against the pinned results/table_auto.csv.
    if want(&opts, "table-auto") {
        let t = experiments::Experiments::table_auto(n_threads);
        out.push_str(&t.render());
        out.push('\n');
        if let Some(dir) = &opts.csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", t.id.to_lowercase().replace(' ', "_"));
            std::fs::write(&path, t.to_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
        if opts.sections.iter().all(|s| s == "table-auto") {
            print!("{out}");
            if let Some(path) = &opts.out_file {
                std::fs::write(path, out.as_bytes()).expect("write out file");
                eprintln!("wrote {path}");
            }
            return;
        }
    }

    eprintln!(
        "loading workload ({:?} scale) and calibrating models...",
        opts.scale
    );
    let (evaluator, status) = Evaluator::load(opts.scale, opts.use_cache);
    eprintln!(
        "workload: {status:?} (snapshot dir {})",
        cache::cache_dir().display()
    );
    let exps = evaluator.experiments();
    out.push_str(&format!(
        "Reproduction of \"An Initial Evaluation of the Tera Multithreaded Architecture\n\
         and Programming System Using the C3I Parallel Benchmark Suite\" (SC'98).\n\
         Workload scale: {:?}. Calibration: S_TA={:.1} S_TM={:.1} eta2={:.3} kappa={:.1}\n\n",
        exps.workload.scale,
        exps.cal.s_ta,
        exps.cal.s_tm,
        exps.cal.tera.eta2,
        exps.cal.tera.spawn_cycles_per_task
    ));

    if want(&opts, "tables") {
        let tables = exps.all_tables();
        if let Some(path) = &opts.json_file {
            let json = serde_json::to_string_pretty(&tables).expect("serialize tables");
            std::fs::write(path, json).expect("write json");
            eprintln!("wrote {path}");
        }
        for t in &tables {
            out.push_str(&t.render());
            out.push('\n');
            if let Some(dir) = &opts.csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{dir}/{}.csv", t.id.to_lowercase().replace(' ', "_"));
                std::fs::write(&path, t.to_csv()).expect("write csv");
            }
        }
    }

    if want(&opts, "figures") {
        for f in [
            Figure::ThreatPPro,
            Figure::ThreatExemplar,
            Figure::TerrainPPro,
            Figure::TerrainExemplar,
        ] {
            out.push_str(&exps.figure(f));
            out.push('\n');
        }
    }

    if want(&opts, "autopar") {
        let summary = exps.autopar_report();
        out.push_str("Automatic parallelization (modeled Tera/Exemplar compilers):\n");
        out.push_str(&summary.report.to_string());
        out.push_str(
            "\nDataflow pass (reductions, privatization, compaction, purity summaries):\n",
        );
        out.push_str(&summary.dataflow.to_string());
        out.push('\n');
    }

    if want(&opts, "scalability") {
        out.push_str(
            &exps
                .scalability_projection(&[1, 2, 4, 8, 16, 32, 64, 128, 256])
                .render(),
        );
        out.push('\n');
    }

    if want(&opts, "sensitivity") {
        out.push_str(&exps.sensitivity().render());
        out.push('\n');
    }

    if want(&opts, "utilization") {
        out.push_str(&utilization_report(n_threads));
        out.push('\n');
    }

    if opts.timing {
        let report = experiments::harness_timing(opts.scale, n_threads);
        let json = serde_json::to_string_pretty(&report).expect("serialize timing report");
        std::fs::write("BENCH_harness.json", &json).expect("write BENCH_harness.json");
        eprintln!("wrote BENCH_harness.json");
        out.push_str(&report.render());
        out.push('\n');
    }

    if opts.profile {
        out.push_str(&profile_report());
        out.push('\n');
    }

    print!("{out}");
    if let Some(path) = &opts.out_file {
        let mut f = std::fs::File::create(path).expect("create out file");
        f.write_all(out.as_bytes()).expect("write out file");
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    /// The PR-8 satellite bug: `repro --json` (missing operand) silently
    /// behaved like plain `repro`. Every value-taking flag must reject a
    /// missing or flag-like operand, naming the flag in the error.
    #[test]
    fn value_flags_reject_missing_or_flaglike_operands() {
        const VALUE_FLAGS: &[&str] = &[
            "--csv",
            "--json",
            "--out",
            "--gate",
            "--fuzz",
            "--fuzz-seed",
            "--threads",
            "--serve",
            "--load",
            "--requests",
            "--conns",
            "--mix-seed",
        ];
        for flag in VALUE_FLAGS {
            let err = parse(&[flag]).expect_err(flag);
            assert!(
                err.contains(flag),
                "{flag}: error '{err}' must name the flag"
            );
            let err = parse(&[flag, "--reduced"]).expect_err(flag);
            assert!(
                err.contains(flag),
                "{flag} with a flag as operand: error '{err}' must name the flag"
            );
        }
    }

    #[test]
    fn numeric_operands_must_parse() {
        for bad in [
            &["--fuzz", "many"][..],
            &["--fuzz-seed", "1.5"],
            &["--threads", "-2"],
            &["--requests", "x"],
            &["--conns", ""],
            &["--mix-seed", "-1"],
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("--bogus"));
    }

    #[test]
    fn valid_invocations_parse() {
        let o = parse(&["--reduced", "--csv", "outdir", "--json", "t.json", "tables"]).unwrap();
        assert_eq!(o.scale, WorkloadScale::Reduced);
        assert_eq!(o.csv_dir.as_deref(), Some("outdir"));
        assert_eq!(o.json_file.as_deref(), Some("t.json"));
        assert_eq!(o.sections, ["tables"]);

        let o = parse(&["--serve", "target/c3i.sock", "--threads", "2", "--no-cache"]).unwrap();
        assert_eq!(o.serve.as_deref(), Some("target/c3i.sock"));
        assert_eq!(o.n_threads, Some(2));
        assert!(!o.use_cache);

        let o = parse(&[
            "--load",
            "127.0.0.1:9311",
            "--requests",
            "40",
            "--conns",
            "4",
            "--mix-seed",
            "7",
            "--stop-server",
        ])
        .unwrap();
        assert_eq!(o.load.as_deref(), Some("127.0.0.1:9311"));
        assert_eq!(o.requests, 40);
        assert_eq!(o.conns, 4);
        assert_eq!(o.mix_seed, 7);
        assert!(o.stop_server);

        // Defaults when no sections are given.
        let o = parse(&[]).unwrap();
        assert_eq!(o.sections, ["all"]);
        assert_eq!(o.requests, 64);
        assert_eq!(o.conns, 4);
        assert!(o.use_cache);
    }
}
