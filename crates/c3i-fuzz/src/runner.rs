//! The differential runner: one scenario through the whole matrix.
//!
//! For a Terrain Masking case the sequential Program 3 is the oracle and
//! is itself re-verified with the independent min-recomposition verifier;
//! the coarse (Program 4) and fine (ring recurrence) variants must then
//! reproduce the oracle's grid bit-for-bit under every schedule × worker
//! combination. For a Threat Analysis case Program 1 is the oracle
//! (re-verified for feasibility/maximality/completeness); the chunked
//! Program 2 must flatten to the identical interval list, and the
//! fine-grained fetch-add program must match as a canonical-sorted set
//! (its slot order is inherently racy — the paper's §5 point).

use crate::gen::FuzzCase;
use c3i::terrain;
use c3i::threat;
use std::panic::{catch_unwind, AssertUnwindSafe};
use sthreads::Schedule;

/// Worker counts exercised for every variant × schedule combination.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// All three `sthreads` schedules.
pub const SCHEDULES: [Schedule; 3] = [Schedule::Static, Schedule::Dynamic, Schedule::Stealing];

/// Chunk count used for the chunked Threat Analysis variant (Program 2
/// runs more chunks than workers on the Tera; 8 chunks over 1/2/8 workers
/// covers chunks-per-worker ratios of 8, 4, and 1).
pub const N_CHUNKS: usize = 8;

/// Block-lock grid used for the coarse Terrain Masking variant.
pub const N_BLOCKS: usize = 10;

/// One divergence from the oracle (or a panic / oracle self-check
/// failure), attributed to the variant configuration that produced it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Failure {
    /// Which run diverged, e.g. `"terrain coarse Dynamic x8"`.
    pub config: String,
    /// First observed mismatch or the captured panic message.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.config, self.detail)
    }
}

/// Result of running one case through the differential matrix.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Every variant matched the oracle everywhere.
    Passed,
    /// The scenario failed validation and was skipped gracefully — the
    /// campaign continues (this is the path a malformed corpus file or a
    /// shrinker-mangled intermediate takes).
    Rejected(String),
    /// A variant diverged from the oracle, a run panicked, or the oracle
    /// failed its own independent verifier.
    Failed(Failure),
}

impl CaseOutcome {
    /// True for [`CaseOutcome::Failed`].
    pub fn is_failure(&self) -> bool {
        matches!(self, CaseOutcome::Failed(_))
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, converting a panic into a [`Failure`] for `config`.
fn guarded<T>(config: &str, f: impl FnOnce() -> T) -> Result<T, Failure> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| Failure {
        config: config.to_string(),
        detail: format!("panicked: {}", panic_message(p)),
    })
}

/// First cell where two masking grids differ bitwise, as a report string.
fn first_grid_diff(seq: &c3i::Grid<f64>, got: &c3i::Grid<f64>) -> Option<String> {
    if (got.x_size(), got.y_size()) != (seq.x_size(), seq.y_size()) {
        return Some(format!(
            "grid shape {}x{} != oracle {}x{}",
            got.x_size(),
            got.y_size(),
            seq.x_size(),
            seq.y_size()
        ));
    }
    for (x, y, &v) in seq.iter_cells() {
        let w = got[(x, y)];
        if v.to_bits() != w.to_bits() {
            return Some(format!("cell ({x}, {y}): oracle {v:?} != variant {w:?}"));
        }
    }
    None
}

/// Run one fuzz case through the full differential matrix.
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    match case {
        FuzzCase::Terrain(s) => run_terrain_case(s),
        FuzzCase::Threat(s) => run_threat_case(s),
    }
}

fn run_terrain_case(s: &terrain::TerrainScenario) -> CaseOutcome {
    if let Err(e) = s.validate() {
        return CaseOutcome::Rejected(e.to_string());
    }

    // Oracle: sequential Program 3, re-checked by the independent
    // per-threat min-recomposition verifier.
    let seq = match guarded("terrain sequential oracle", || {
        terrain::terrain_masking_host(s)
    }) {
        Ok(g) => g,
        Err(f) => return CaseOutcome::Failed(f),
    };
    if let Err(e) = terrain::verify_masking(s, &seq) {
        return CaseOutcome::Failed(Failure {
            config: "terrain oracle self-check".to_string(),
            detail: e.to_string(),
        });
    }

    // Kernel differential: the pinned scalar baseline (historical
    // fresh-allocation, cell-at-a-time recurrence) must agree bitwise
    // with the run-based arena kernels the oracle now uses — and, when
    // the crate is built with `--features simd`, with the vectorized row
    // sweeps the oracle then takes.
    {
        let config = "terrain reference baseline";
        match guarded(config, || terrain::terrain_masking_reference(s)) {
            Err(f) => return CaseOutcome::Failed(f),
            Ok(got) => {
                if let Some(d) = first_grid_diff(&seq, &got) {
                    return CaseOutcome::Failed(Failure {
                        config: config.to_string(),
                        detail: d,
                    });
                }
            }
        }
    }

    for schedule in SCHEDULES {
        for workers in WORKER_COUNTS {
            let config = format!("terrain coarse {schedule:?} x{workers}");
            match guarded(&config, || {
                terrain::terrain_masking_coarse_host_sched(s, workers, N_BLOCKS, schedule)
            }) {
                Err(f) => return CaseOutcome::Failed(f),
                Ok(got) => {
                    if let Some(d) = first_grid_diff(&seq, &got) {
                        return CaseOutcome::Failed(Failure { config, detail: d });
                    }
                }
            }

            let config = format!("terrain fine {schedule:?} x{workers}");
            match guarded(&config, || {
                terrain::terrain_masking_fine_host_sched(s, workers, schedule)
            }) {
                Err(f) => return CaseOutcome::Failed(f),
                Ok(got) => {
                    if let Some(d) = first_grid_diff(&seq, &got) {
                        return CaseOutcome::Failed(Failure { config, detail: d });
                    }
                }
            }
        }
    }
    CaseOutcome::Passed
}

fn run_threat_case(s: &threat::ThreatScenario) -> CaseOutcome {
    if let Err(e) = s.validate() {
        return CaseOutcome::Rejected(e.to_string());
    }

    // Oracle: sequential Program 1, re-checked for feasibility,
    // maximality, and completeness.
    let seq = match guarded("threat sequential oracle", || {
        threat::threat_analysis_host(s)
    }) {
        Ok(v) => v,
        Err(f) => return CaseOutcome::Failed(f),
    };
    if let Err(e) = threat::verify_intervals(s, &seq) {
        return CaseOutcome::Failed(Failure {
            config: "threat oracle self-check".to_string(),
            detail: e.to_string(),
        });
    }
    let seq_canonical = threat::canonical(seq.clone());

    for schedule in SCHEDULES {
        for workers in WORKER_COUNTS {
            let config = format!("threat chunked {schedule:?} x{workers}");
            match guarded(&config, || {
                threat::threat_analysis_chunked_host_sched(s, N_CHUNKS, workers, schedule)
            }) {
                Err(f) => return CaseOutcome::Failed(f),
                Ok(got) => {
                    let flat = got.flatten();
                    if flat != seq {
                        return CaseOutcome::Failed(Failure {
                            config,
                            detail: format!(
                                "flattened chunks ({} intervals) != oracle ({} intervals) \
                                 or differ in order/content",
                                flat.len(),
                                seq.len()
                            ),
                        });
                    }
                }
            }

            let config = format!("threat fine {schedule:?} x{workers}");
            match guarded(&config, || {
                threat::threat_analysis_fine_host_sched(s, workers, schedule)
            }) {
                Err(f) => return CaseOutcome::Failed(f),
                Ok(got) => {
                    let got = threat::canonical(got.intervals);
                    if got != seq_canonical {
                        return CaseOutcome::Failed(Failure {
                            config,
                            detail: format!(
                                "canonical interval set ({}) != oracle set ({})",
                                got.len(),
                                seq_canonical.len()
                            ),
                        });
                    }
                }
            }
        }
    }
    CaseOutcome::Passed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn known_good_scenarios_pass_the_matrix() {
        let t = FuzzCase::Terrain(terrain::generate(terrain::TerrainScenarioParams {
            grid_size: 33,
            n_threats: 5,
            seed: 2,
            ..Default::default()
        }));
        assert!(matches!(run_case(&t), CaseOutcome::Passed));

        let a = FuzzCase::Threat(threat::small_scenario(3));
        assert!(matches!(run_case(&a), CaseOutcome::Passed));
    }

    #[test]
    fn malformed_scenarios_are_rejected_not_fatal() {
        let mut s = terrain::small_scenario(1);
        s.threats[0].x = 1_000_000; // off the grid
        match run_case(&FuzzCase::Terrain(s)) {
            CaseOutcome::Rejected(msg) => assert!(msg.contains("outside"), "{msg}"),
            other => panic!("expected Rejected, got {other:?}"),
        }

        let mut s = threat::small_scenario(1);
        s.threats[0].launch_time = 1.0e12; // would scan for billions of steps
        match run_case(&FuzzCase::Threat(s)) {
            CaseOutcome::Rejected(msg) => assert!(msg.contains("timeline"), "{msg}"),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn a_sample_of_generated_cases_passes() {
        let cfg = GenConfig { reduced: true };
        for i in 0..6 {
            let case = generate_case(99, i, &cfg);
            match run_case(&case) {
                CaseOutcome::Failed(f) => panic!("case {i} ({}): {f}", case.kind()),
                CaseOutcome::Rejected(msg) => {
                    panic!("generator produced an invalid case {i}: {msg}")
                }
                CaseOutcome::Passed => {}
            }
        }
    }
}
