//! Delta-debugging minimization of failing scenarios.
//!
//! Classic ddmin over the scenario's entity lists (threats, weapons),
//! followed by structural reductions (cropping the terrain grid, zeroing
//! mast heights). Every candidate is re-run through the caller-supplied
//! failure predicate, so the minimizer can never "fix" the failure while
//! shrinking — it only keeps reductions that still reproduce it.

use crate::gen::FuzzCase;
use c3i::terrain::TerrainScenario;
use c3i::Grid;

/// ddmin over a list: repeatedly remove complement-of-chunk slices while
/// the predicate still fails, refining granularity until chunks are
/// single elements. Returns a (locally) 1-minimal sublist.
fn ddmin_list<T: Clone>(items: &[T], still_fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Candidate: everything except current[start..end].
            let candidate: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    // Final pass: try dropping to empty outright.
    if !current.is_empty() && still_fails(&[]) {
        current.clear();
    }
    current
}

/// Try halving the terrain grid (top-left crop), keeping only threats
/// that survive on the cropped grid with a clamped radius.
fn crop_terrain(s: &TerrainScenario) -> Option<TerrainScenario> {
    let (xs, ys) = (s.terrain.x_size(), s.terrain.y_size());
    let (nx, ny) = (xs.div_ceil(2).max(1), ys.div_ceil(2).max(1));
    if (nx, ny) == (xs, ys) {
        return None;
    }
    let terrain = Grid::from_fn(nx, ny, |x, y| s.terrain[(x, y)]);
    let threats = s
        .threats
        .iter()
        .filter(|t| t.x < nx && t.y < ny)
        .map(|t| {
            let mut t = *t;
            t.radius = t.radius.min(nx + ny);
            t
        })
        .collect();
    Some(TerrainScenario {
        terrain,
        threats,
        cell_size_m: s.cell_size_m,
    })
}

/// Minimize `case` with delta debugging: the returned case still
/// satisfies `still_fails` and is (locally) minimal in its threat list,
/// weapon list, and — for terrain cases — grid size.
pub fn shrink_case(case: &FuzzCase, mut still_fails: impl FnMut(&FuzzCase) -> bool) -> FuzzCase {
    debug_assert!(still_fails(case), "shrink input must itself fail");
    match case {
        FuzzCase::Terrain(s) => {
            let mut best = s.clone();
            // Shrink the grid first — grid size dominates replay cost.
            while let Some(cropped) = crop_terrain(&best) {
                if still_fails(&FuzzCase::Terrain(cropped.clone())) {
                    best = cropped;
                } else {
                    break;
                }
            }
            best.threats = ddmin_list(&best.threats, &mut |threats| {
                let mut c = best.clone();
                c.threats = threats.to_vec();
                still_fails(&FuzzCase::Terrain(c))
            });
            FuzzCase::Terrain(best)
        }
        FuzzCase::Threat(s) => {
            let mut best = s.clone();
            best.threats = ddmin_list(&best.threats, &mut |threats| {
                let mut c = best.clone();
                c.threats = threats.to_vec();
                still_fails(&FuzzCase::Threat(c))
            });
            best.weapons = ddmin_list(&best.weapons, &mut |weapons| {
                let mut c = best.clone();
                c.weapons = weapons.to_vec();
                still_fails(&FuzzCase::Threat(c))
            });
            FuzzCase::Threat(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3i::terrain::{small_scenario, GroundThreat};

    #[test]
    fn ddmin_isolates_a_single_bad_element() {
        let items: Vec<u32> = (0..100).collect();
        let mut calls = 0;
        let min = ddmin_list(&items, &mut |xs| {
            calls += 1;
            xs.contains(&73)
        });
        assert_eq!(min, vec![73]);
        assert!(
            calls < 200,
            "ddmin should be ~log-linear, made {calls} calls"
        );
    }

    #[test]
    fn ddmin_keeps_interacting_pairs() {
        let items: Vec<u32> = (0..40).collect();
        let min = ddmin_list(&items, &mut |xs| xs.contains(&3) && xs.contains(&29));
        assert_eq!(min, vec![3, 29]);
    }

    #[test]
    fn shrink_minimizes_a_terrain_case_to_the_culprit_threat() {
        // Synthetic failure: "fails whenever a radius-0 threat at the
        // origin is present". The shrinker must reduce 12 threats on a
        // 128-grid down to that one threat on a tiny grid.
        let mut s = small_scenario(1);
        s.threats.push(GroundThreat {
            x: 0,
            y: 0,
            radius: 0,
            mast_height: 1.0,
        });
        let case = FuzzCase::Terrain(s);
        let fails = |c: &FuzzCase| match c {
            FuzzCase::Terrain(s) => s.threats.iter().any(|t| (t.x, t.y, t.radius) == (0, 0, 0)),
            _ => false,
        };
        let min = shrink_case(&case, fails);
        match min {
            FuzzCase::Terrain(s) => {
                assert_eq!(s.threats.len(), 1, "must isolate the culprit threat");
                assert!(s.terrain.x_size() <= 2, "grid must shrink too");
            }
            _ => panic!("kind must be preserved"),
        }
    }

    #[test]
    fn shrink_minimizes_a_threat_case() {
        let s = c3i::threat::small_scenario(2);
        let marker = s.threats[17];
        let case = FuzzCase::Threat(s);
        let min = shrink_case(&case, |c| match c {
            FuzzCase::Threat(s) => s.threats.contains(&marker),
            _ => false,
        });
        match min {
            FuzzCase::Threat(s) => {
                assert_eq!(s.threats.len(), 1);
                assert_eq!(s.threats[0], marker);
                assert!(
                    s.weapons.is_empty(),
                    "weapons are irrelevant to this failure"
                );
            }
            _ => panic!("kind must be preserved"),
        }
    }
}
