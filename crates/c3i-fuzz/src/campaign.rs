//! Campaign driver: generate N cases, run each through the differential
//! matrix, and minimize whatever fails.

use crate::gen::{generate_case, FuzzCase, GenConfig};
use crate::runner::{run_case, CaseOutcome, Failure};
use crate::shrink::shrink_case;

/// Campaign parameters (the `repro --fuzz N [--fuzz-seed S]` knobs).
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of scenarios to generate and check.
    pub n_cases: usize,
    /// Campaign seed: drives both scenario generation and the `sthreads`
    /// steal-seed replay knob, so a campaign reproduces end to end.
    pub seed: u64,
    /// Use reduced scenario sizes (CI smoke runs).
    pub reduced: bool,
}

/// A failing case after delta-debugging minimization.
#[derive(Debug, Clone)]
pub struct MinimizedFailure {
    /// Campaign index of the original failing case (reproduce with
    /// `generate_case(seed, index, ..)`).
    pub index: usize,
    /// The minimized scenario — commit this under `tests/corpus/` once
    /// the underlying bug is fixed.
    pub case: FuzzCase,
    /// The divergence observed on the *minimized* case.
    pub failure: Failure,
}

/// Aggregate campaign result.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Cases generated.
    pub n_cases: usize,
    /// Cases where every variant matched the oracle.
    pub n_passed: usize,
    /// Cases rejected by scenario validation (counted, not fatal; the
    /// generator's own output never lands here).
    pub n_rejected: usize,
    /// Minimized failures, in discovery order.
    pub failures: Vec<MinimizedFailure>,
}

impl CampaignReport {
    /// True when no case failed the differential check.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run a full campaign: seeds the `sthreads` steal-replay knob, generates
/// `n_cases` scenarios, runs each through the matrix, and ddmin-minimizes
/// every failure before reporting it. `progress` is called after each
/// case with (index, outcome) — the CLI uses it for live reporting; pass
/// a no-op closure otherwise.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mut progress: impl FnMut(usize, &CaseOutcome),
) -> CampaignReport {
    sthreads::set_steal_seed(cfg.seed);
    let gen_cfg = GenConfig {
        reduced: cfg.reduced,
    };
    let mut report = CampaignReport {
        n_cases: cfg.n_cases,
        ..Default::default()
    };
    for index in 0..cfg.n_cases {
        let case = generate_case(cfg.seed, index, &gen_cfg);
        let outcome = run_case(&case);
        progress(index, &outcome);
        match outcome {
            CaseOutcome::Passed => report.n_passed += 1,
            CaseOutcome::Rejected(_) => report.n_rejected += 1,
            CaseOutcome::Failed(original) => {
                let minimized = shrink_case(&case, |c| run_case(c).is_failure());
                let failure = match run_case(&minimized) {
                    CaseOutcome::Failed(f) => f,
                    // The minimized case must still fail (the shrinker's
                    // predicate guarantees it); fall back defensively.
                    _ => original,
                };
                report.failures.push(MinimizedFailure {
                    index,
                    case: minimized,
                    failure,
                });
            }
        }
    }
    sthreads::set_steal_seed(0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_reduced_campaign_passes_cleanly() {
        let report = run_campaign(
            &CampaignConfig {
                n_cases: 8,
                seed: 1,
                reduced: true,
            },
            |_, _| {},
        );
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.n_passed, 8);
        assert_eq!(report.n_rejected, 0);
    }

    #[test]
    fn campaign_restores_the_steal_seed() {
        run_campaign(
            &CampaignConfig {
                n_cases: 1,
                seed: 77,
                reduced: true,
            },
            |_, _| {},
        );
        assert_eq!(sthreads::steal_seed(), 0);
    }
}
