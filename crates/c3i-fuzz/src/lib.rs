//! Differential scenario fuzzing for the C3I benchmark kernels.
//!
//! The paper validates each benchmark on only five fixed seeded scenarios.
//! This crate closes that blind spot: a seeded, distribution-driven
//! generator produces adversarial Terrain Masking and Threat Analysis
//! scenarios (threat clusters with maximal region-of-influence overlap,
//! degenerate terrains — flat, cliff wall, single spike — pathological
//! grid sizes including non-powers-of-two and tiny grids, and randomized
//! engagement timelines), and every scenario runs through the full
//! differential matrix:
//!
//! > sequential oracle × {coarse, fine, chunked} × {Static, Dynamic,
//! > Stealing} × {1, 2, 8} workers
//!
//! asserting bit-identical outputs (set-identical for the fine-grained
//! Threat Analysis variant, whose slot order is inherently racy). A
//! failing scenario is minimized with delta-debugging shrinking before it
//! is reported, and minimized regressions are pinned under `tests/corpus/`
//! where a standard `#[test]` replays them on every CI run.
//!
//! Entry points: [`run_campaign`] (the `repro --fuzz N` backend),
//! [`run_case`] (one scenario through the whole matrix), and
//! [`shrink_case`] (delta-debugging minimization). The [`mix`] module
//! reuses the same seeded-generation idiom for *service traffic*:
//! deterministic scenario-evaluation request mixes replayed by
//! `repro --load` against a `repro --serve` server.

#![warn(missing_docs)]

pub mod campaign;
pub mod gen;
pub mod mix;
pub mod runner;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, MinimizedFailure};
pub use gen::{generate_case, FuzzCase, GenConfig};
pub use mix::{generate_mix, generate_request};
pub use runner::{run_case, CaseOutcome, Failure};
pub use shrink::shrink_case;

use std::path::Path;

/// Write a fuzz case to a JSON file (pretty-printed, so corpus entries
/// diff readably in review).
pub fn save_case(case: &FuzzCase, path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(case)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Read a fuzz case from a JSON file (a `tests/corpus/` entry or a file
/// written by a failing `repro --fuzz` run).
pub fn load_case(path: impl AsRef<Path>) -> std::io::Result<FuzzCase> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_round_trip_through_json() {
        let dir = std::env::temp_dir();
        for (i, case) in [
            generate_case(1, 0, &GenConfig { reduced: true }),
            generate_case(1, 1, &GenConfig { reduced: true }),
        ]
        .iter()
        .enumerate()
        {
            let path = dir.join(format!(
                "c3i_fuzz_roundtrip_{}_{i}.json",
                std::process::id()
            ));
            save_case(case, &path).unwrap();
            let loaded = load_case(&path).unwrap();
            assert_eq!(
                serde_json::to_string(case).unwrap(),
                serde_json::to_string(&loaded).unwrap()
            );
            std::fs::remove_file(path).ok();
        }
    }
}
