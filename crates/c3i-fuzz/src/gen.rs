//! Seeded, distribution-driven scenario generation.
//!
//! Each case index under a campaign seed maps to one deterministic
//! scenario, so a failing case reproduces from `(seed, index)` alone. The
//! distributions are deliberately adversarial: the generator leans on
//! exactly the shapes the five fixed benchmark scenarios never exercise —
//! degenerate terrains, pathological grid sizes, threat clusters with
//! maximal region-of-influence overlap, and engagement timelines squeezed
//! into near-coincident launches.

use c3i::terrain::{GroundThreat, TerrainScenario, TerrainScenarioParams};
use c3i::threat::{ThreatScenario, ThreatScenarioParams};
use c3i::Grid;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One differential-fuzzing input: a scenario for either benchmark.
/// Serialized externally tagged (`{"Terrain": {..}}` / `{"Threat": {..}}`),
/// the representation `tests/corpus/` entries are stored in.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum FuzzCase {
    /// A Terrain Masking scenario (oracle: Program 3; variants: coarse
    /// Program 4 and the fine-grained ring recurrence).
    Terrain(TerrainScenario),
    /// A Threat Analysis scenario (oracle: Program 1; variants: chunked
    /// Program 2 and the fine-grained fetch-add program).
    Threat(ThreatScenario),
}

impl FuzzCase {
    /// Short human-readable tag for reports (`"terrain"` / `"threat"`).
    pub fn kind(&self) -> &'static str {
        match self {
            FuzzCase::Terrain(_) => "terrain",
            FuzzCase::Threat(_) => "threat",
        }
    }

    /// A rough size measure used by shrink reporting: number of entities
    /// (threats + weapons) plus grid cells.
    pub fn size(&self) -> usize {
        match self {
            FuzzCase::Terrain(s) => s.threats.len() + s.terrain.len(),
            FuzzCase::Threat(s) => s.threats.len() + s.weapons.len(),
        }
    }
}

/// Knobs bounding how large generated scenarios get. The default is
/// full-size generation (`reduced: false`).
#[derive(Debug, Clone, Copy, Default)]
pub struct GenConfig {
    /// Cap scenario sizes for smoke runs (`repro --reduced --fuzz N`):
    /// grids stay ≤ 33 cells per side and threat counts stay single-digit.
    pub reduced: bool,
}

/// Generate case `index` of the campaign with `seed`, deterministically.
pub fn generate_case(seed: u64, index: usize, cfg: &GenConfig) -> FuzzCase {
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed ^ (index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x5bf0_3635),
    );
    if rng.random_range(0..2) == 0 {
        FuzzCase::Terrain(gen_terrain(&mut rng, cfg))
    } else {
        FuzzCase::Threat(gen_threat(&mut rng, cfg))
    }
}

/// Pathological grid sizes: tiny, non-power-of-two, power-of-two, and
/// off-by-one around powers of two.
const GRID_SIZES_REDUCED: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31, 32, 33];
const GRID_SIZES_FULL: &[usize] = &[1, 2, 3, 5, 7, 9, 15, 16, 17, 31, 33, 48, 63, 64, 65, 96];

fn pick<T: Copy>(rng: &mut ChaCha8Rng, xs: &[T]) -> T {
    xs[rng.random_range(0..xs.len())]
}

fn gen_terrain(rng: &mut ChaCha8Rng, cfg: &GenConfig) -> TerrainScenario {
    let sizes = if cfg.reduced {
        GRID_SIZES_REDUCED
    } else {
        GRID_SIZES_FULL
    };
    let n = pick(rng, sizes);

    // Degenerate terrain styles alongside the realistic fractal.
    let style = rng.random_range(0..5);
    let terrain: Grid<f64> = match style {
        // All-flat: every line-of-sight comparison ties.
        0 => Grid::new(n, n, rng.random_range(0.0..500.0)),
        // Cliff wall: a step function splits the grid — the recurrence
        // must handle an abrupt full-relief jump between adjacent cells.
        1 => {
            let wall = rng.random_range(0..n.max(1));
            let (lo, hi) = (
                rng.random_range(0.0..100.0),
                rng.random_range(900.0..1500.0),
            );
            Grid::from_fn(n, n, |x, _| if x < wall { lo } else { hi })
        }
        // Single spike on otherwise flat ground.
        2 => {
            let (sx, sy) = (rng.random_range(0..n.max(1)), rng.random_range(0..n.max(1)));
            let base = rng.random_range(0.0..50.0);
            let peak = rng.random_range(500.0..2000.0);
            Grid::from_fn(n, n, |x, y| if (x, y) == (sx, sy) { peak } else { base })
        }
        // Uncorrelated noise: no spatial structure at all.
        3 => {
            let mut g = Grid::new(n, n, 0.0);
            for y in 0..n {
                for x in 0..n {
                    g[(x, y)] = rng.random_range(0.0..1500.0);
                }
            }
            g
        }
        // Fractal terrain from the production generator.
        _ => {
            c3i::terrain::generate(TerrainScenarioParams {
                grid_size: n,
                n_threats: 0,
                seed: rng.random_range(0u64..=u64::MAX),
                ..TerrainScenarioParams::default()
            })
            .terrain
        }
    };

    // Threat placement: clusters force maximal region overlap (every
    // merge order matters), corners force heavy ring clipping.
    let n_threats = if cfg.reduced {
        rng.random_range(0..=6)
    } else {
        rng.random_range(0..=12)
    };
    let placement = rng.random_range(0..3);
    let focus = (rng.random_range(0..n.max(1)), rng.random_range(0..n.max(1)));
    let threats = (0..n_threats)
        .map(|_| {
            let (x, y) = match placement {
                // Adversarial cluster: everything within a couple of cells
                // of one focus point.
                0 => (
                    focus
                        .0
                        .saturating_add(rng.random_range(0usize..=2))
                        .min(n.saturating_sub(1)),
                    focus
                        .1
                        .saturating_sub(rng.random_range(0usize..=2).min(focus.1)),
                ),
                // Corners and edges: regions clip on one or two sides.
                1 => {
                    let c = n.saturating_sub(1);
                    pick(
                        rng,
                        &[(0, 0), (c, 0), (0, c), (c, c), (c / 2, 0), (0, c / 2)],
                    )
                }
                // Uniform.
                _ => (rng.random_range(0..n.max(1)), rng.random_range(0..n.max(1))),
            };
            // Radii up to well past the grid side: `2n` still validates
            // (the cap is `xs + ys`) and clips every ring, the worst case
            // for the ring recurrence.
            let radius = match rng.random_range(0..4) {
                0 => rng.random_range(0..=2.min(n.saturating_sub(1))),
                1 => n.saturating_sub(1),
                2 => 2 * n.saturating_sub(1),
                _ => rng.random_range(0..n.max(1)),
            };
            GroundThreat {
                x,
                y,
                radius,
                mast_height: rng.random_range(0.0..60.0),
            }
        })
        .collect();

    TerrainScenario {
        terrain,
        threats,
        cell_size_m: pick(rng, &[1.0, 30.0, 100.0, 1000.0]),
    }
}

fn gen_threat(rng: &mut ChaCha8Rng, cfg: &GenConfig) -> ThreatScenario {
    let (max_threats, max_weapons) = if cfg.reduced { (10, 4) } else { (24, 6) };
    let mut s = c3i::threat::generate(ThreatScenarioParams {
        n_threats: rng.random_range(0..=max_threats),
        n_weapons: rng.random_range(1..=max_weapons),
        seed: rng.random_range(0u64..=u64::MAX),
        theater_m: pick(rng, &[50_000.0, 300_000.0, 500_000.0]),
        launch_window_s: pick(rng, &[0.001, 1.0, 600.0, 1800.0]),
    });

    // Adversarial mutations on top of the realistic base distribution.
    match rng.random_range(0..4) {
        // Coincident engagement timelines: every threat launches at the
        // same instant, so every (threat, weapon) scan covers the same
        // time steps.
        0 => {
            let t0 = rng.random_range(0.0..100.0);
            for t in &mut s.threats {
                t.launch_time = t0;
            }
        }
        // Impact cluster: all threats aimed at one defended point — the
        // maximal-interval-overlap case.
        1 => {
            if let Some(&first) = s.threats.first().map(|t| &t.impact) {
                for t in &mut s.threats {
                    t.impact = first;
                }
            }
        }
        // Weapon extremes: one weapon that can never intercept (tiny
        // range) and one that intercepts almost everything.
        2 => {
            if let Some(w) = s.weapons.first_mut() {
                w.max_range = 1.0;
            }
            if let Some(w) = s.weapons.last_mut() {
                w.max_range = 1_000_000.0;
                w.reaction_time = 0.0;
                w.min_alt = 0.0;
                w.max_alt = 500_000.0;
            }
        }
        // Boundary flight times: the shortest scans round to zero or one
        // time step.
        _ => {
            for (i, t) in s.threats.iter_mut().enumerate() {
                if i % 2 == 0 {
                    t.flight_time = rng.random_range(0.5..3.0);
                    t.detect_delay = t.flight_time * 0.1;
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed_and_index() {
        let cfg = GenConfig::default();
        for i in 0..8 {
            let a = generate_case(42, i, &cfg);
            let b = generate_case(42, i, &cfg);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "case {i}"
            );
        }
        let a = generate_case(42, 0, &cfg);
        let c = generate_case(43, 0, &cfg);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap(),
            "different seeds must differ"
        );
    }

    #[test]
    fn generated_cases_validate() {
        // The generator must produce scenarios the kernels accept; the
        // Rejected path exists for hand-edited corpus files, not for the
        // generator's own output.
        for reduced in [true, false] {
            let cfg = GenConfig { reduced };
            for i in 0..40 {
                match generate_case(7, i, &cfg) {
                    FuzzCase::Terrain(s) => {
                        s.validate().unwrap_or_else(|e| panic!("case {i}: {e}"))
                    }
                    FuzzCase::Threat(s) => s.validate().unwrap_or_else(|e| panic!("case {i}: {e}")),
                }
            }
        }
    }

    #[test]
    fn both_kinds_and_degenerate_shapes_appear() {
        let cfg = GenConfig { reduced: true };
        let mut kinds = std::collections::HashSet::new();
        let mut tiny_grid = false;
        let mut clipped_radius = false;
        for i in 0..60 {
            match generate_case(3, i, &cfg) {
                FuzzCase::Terrain(s) => {
                    kinds.insert("terrain");
                    tiny_grid |= s.terrain.x_size() <= 3;
                    clipped_radius |= s
                        .threats
                        .iter()
                        .any(|t| t.radius >= s.terrain.x_size().max(1));
                }
                FuzzCase::Threat(_) => {
                    kinds.insert("threat");
                }
            }
        }
        assert_eq!(kinds.len(), 2, "both benchmark kinds must be generated");
        assert!(tiny_grid, "tiny grids must appear");
        assert!(clipped_radius, "grid-exceeding radii must appear");
    }
}
