//! Seeded generation of scenario-evaluation **request mixes** for the
//! `repro --serve` service.
//!
//! Where [`crate::gen`] fuzzes the benchmark *kernels* with adversarial
//! scenarios, this module fuzzes the *service* with adversarial traffic:
//! a deterministic, seed-replayable stream of [`EvalRequest`]s spanning
//! every request kind — cheap pings, every paper table and figure,
//! modeled-benchmark configurations across all four platforms with
//! boundary processor/chunk counts, scalability projections, and the
//! expensive sensitivity sweep. The `repro --load` generator replays a
//! mix through a live server and checks every response against a direct
//! sequential evaluation; the CI smoke pins one seed.
//!
//! The distribution is weighted toward cheap requests (pings, model
//! evaluations) with a tail of heavy ones (tables, sensitivity), so a
//! replay exercises the batching queue with realistically mixed service
//! times rather than uniform work.

use eval_core::{EvalRequest, Platform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Processor counts that probe model boundaries on the Tera (whose model
/// projects past the paper's 2-processor machine, §8) and in scalability
/// requests: serial, the paper's machine sizes, and the projection range.
const PROC_COUNTS: &[usize] = &[1, 2, 3, 4, 8, 16, 64, 256, 1024];

/// Tera chunk counts from the paper's chunking experiments (Table 5 uses
/// 11–89; the fine-grained limit is one chunk per threat).
const CHUNK_COUNTS: &[usize] = &[1, 11, 23, 45, 89, 256, 1024, 100_000];

const PLATFORMS: &[Platform] = &[
    Platform::Alpha,
    Platform::PentiumPro,
    Platform::Exemplar,
    Platform::Tera,
];

fn pick<T: Copy>(rng: &mut ChaCha8Rng, xs: &[T]) -> T {
    xs[rng.random_range(0..xs.len())]
}

/// A processor count admissible on `platform`: conventional machines are
/// bounded by their Table 1 sizes (Alpha is a uniprocessor, the Sparta
/// is 4-way, the Exemplar 16-way); the Tera model projects freely.
fn procs_for(rng: &mut ChaCha8Rng, platform: Platform) -> usize {
    match platform {
        Platform::Alpha => 1,
        Platform::PentiumPro => rng.random_range(1..=4),
        Platform::Exemplar => pick(rng, &[1, 2, 4, 8, 15, 16]),
        Platform::Tera => pick(rng, PROC_COUNTS),
    }
}

/// Generate request `index` of the mix with `seed`, deterministically —
/// the same index/seed pair always yields the same request, so a mix can
/// be replayed request-by-request without materializing it.
pub fn generate_request(seed: u64, index: usize) -> EvalRequest {
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed ^ (index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x0C31_5E7F),
    );
    match rng.random_range(0..100u32) {
        // Cheap head: liveness probes and modeled-benchmark seconds.
        0..=9 => EvalRequest::Ping,
        10..=39 => {
            let platform = pick(&mut rng, PLATFORMS);
            EvalRequest::ThreatModel {
                platform,
                n_procs: procs_for(&mut rng, platform),
                n_chunks: pick(&mut rng, CHUNK_COUNTS),
            }
        }
        40..=64 => {
            let platform = pick(&mut rng, PLATFORMS);
            EvalRequest::TerrainModel {
                platform,
                n_procs: procs_for(&mut rng, platform),
            }
        }
        // Medium: rendered tables and figures.
        65..=84 => EvalRequest::Table {
            n: rng.random_range(1..=12u8),
        },
        85..=92 => EvalRequest::FigurePlot {
            n: rng.random_range(1..=4u8),
        },
        // Heavy tail: projections and the perturbation sweep.
        93..=97 => {
            let len = rng.random_range(1..=8usize);
            EvalRequest::Scalability {
                procs: (0..len).map(|_| pick(&mut rng, PROC_COUNTS)).collect(),
            }
        }
        _ => EvalRequest::Sensitivity,
    }
}

/// Generate the full `n`-request mix for `seed`.
pub fn generate_mix(seed: u64, n: usize) -> Vec<EvalRequest> {
    (0..n).map(|i| generate_request(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table 1 processor counts the service's models enforce.
    fn platform_cap(platform: Platform) -> usize {
        match platform {
            Platform::Alpha => 1,
            Platform::PentiumPro => 4,
            Platform::Exemplar => 16,
            Platform::Tera => 1024,
        }
    }

    #[test]
    fn mix_is_deterministic_and_valid() {
        let a = generate_mix(1, 200);
        let b = generate_mix(1, 200);
        assert_eq!(a, b, "same seed must replay identically");
        let c = generate_mix(2, 200);
        assert_ne!(a, c, "different seeds must differ");
        // Every generated request must pass service admission (no
        // BadRequest traffic in a load run).
        for req in &a {
            match req {
                EvalRequest::Table { n } => assert!((1..=12).contains(n)),
                EvalRequest::FigurePlot { n } => assert!((1..=4).contains(n)),
                EvalRequest::ThreatModel {
                    platform,
                    n_procs,
                    n_chunks,
                } => {
                    assert!((1..=platform_cap(*platform)).contains(n_procs));
                    assert!((1..=100_000).contains(n_chunks));
                }
                EvalRequest::TerrainModel { platform, n_procs } => {
                    assert!((1..=platform_cap(*platform)).contains(n_procs))
                }
                EvalRequest::Scalability { procs } => {
                    assert!(!procs.is_empty() && procs.len() <= 64);
                    assert!(procs.iter().all(|p| (1..=65_536).contains(p)));
                }
                EvalRequest::Ping | EvalRequest::Sensitivity | EvalRequest::Sleep { .. } => {}
            }
        }
    }

    #[test]
    fn mix_covers_every_request_kind() {
        let mix = generate_mix(1, 500);
        let has = |f: &dyn Fn(&EvalRequest) -> bool| mix.iter().any(f);
        assert!(has(&|r| matches!(r, EvalRequest::Ping)));
        assert!(has(&|r| matches!(r, EvalRequest::Table { .. })));
        assert!(has(&|r| matches!(r, EvalRequest::FigurePlot { .. })));
        assert!(has(&|r| matches!(r, EvalRequest::ThreatModel { .. })));
        assert!(has(&|r| matches!(r, EvalRequest::TerrainModel { .. })));
        assert!(has(&|r| matches!(r, EvalRequest::Scalability { .. })));
        assert!(has(&|r| matches!(r, EvalRequest::Sensitivity)));
    }

    #[test]
    fn generate_request_matches_generate_mix() {
        let mix = generate_mix(7, 50);
        for (i, req) in mix.iter().enumerate() {
            assert_eq!(&generate_request(7, i), req);
        }
    }
}
