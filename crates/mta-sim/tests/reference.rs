//! Differential testing: the cycle-level machine and the timing-free
//! reference interpreter must compute identical results on randomly
//! generated programs — under every timing configuration (lookahead on or
//! off, few or many banks), since timing must never change semantics.

use mta_sim::interp::{run_reference, RefOutcome};
use mta_sim::ir::{Instr, Program};
use mta_sim::{Machine, MtaConfig};
use proptest::prelude::*;

const MEM_WORDS: usize = 1 << 10;

/// Strategy: random straight-line-ish programs. All memory addresses are
/// generated in-range; branch targets only jump forward (so programs
/// terminate); no Fork (the reference is single-stream).
fn arb_instr(len: usize, at: usize) -> impl Strategy<Value = Instr> {
    let reg = 1u8..16; // r0 excluded as destination; sources may use 0
    let src = 0u8..16;
    let addr_imm = 0i64..(MEM_WORDS as i64 - 1);
    let fwd = (at + 1)..(len + 1).max(at + 2);
    prop_oneof![
        (reg.clone(), -100i64..100).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (reg.clone(), src.clone()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (reg.clone(), src.clone(), src.clone()).prop_map(|(rd, ra, rb)| Instr::Add { rd, ra, rb }),
        (reg.clone(), src.clone(), src.clone()).prop_map(|(rd, ra, rb)| Instr::Sub { rd, ra, rb }),
        (reg.clone(), src.clone(), src.clone()).prop_map(|(rd, ra, rb)| Instr::Mul { rd, ra, rb }),
        (reg.clone(), src.clone(), src.clone()).prop_map(|(rd, ra, rb)| Instr::Slt { rd, ra, rb }),
        (reg.clone(), src.clone(), -50i64..50).prop_map(|(rd, ra, imm)| Instr::Addi {
            rd,
            ra,
            imm
        }),
        (reg.clone(), src.clone(), src.clone()).prop_map(|(rd, ra, rb)| Instr::FAdd { rd, ra, rb }),
        (reg.clone(), src.clone(), src.clone()).prop_map(|(rd, ra, rb)| Instr::FMax { rd, ra, rb }),
        (reg.clone(), src.clone()).prop_map(|(rd, rs)| Instr::IToF { rd, rs }),
        // Memory at literal addresses via r0 base (always in range).
        (reg.clone(), addr_imm.clone()).prop_map(|(rd, offset)| Instr::Load {
            rd,
            base: 0,
            offset
        }),
        (src.clone(), addr_imm.clone()).prop_map(|(rs, offset)| Instr::Store {
            rs,
            base: 0,
            offset
        }),
        (src.clone(), addr_imm.clone()).prop_map(|(rs, offset)| Instr::Put {
            rs,
            base: 0,
            offset
        }),
        (reg.clone(), addr_imm.clone(), src.clone()).prop_map(|(rd, offset, rs)| Instr::FetchAdd {
            rd,
            base: 0,
            offset,
            rs
        }),
        // Forward-only branches terminate by construction.
        (src.clone(), src.clone(), fwd.clone()).prop_map(|(ra, rb, target)| Instr::Beq {
            ra,
            rb,
            target
        }),
        (src, 0u8..16, fwd).prop_map(|(ra, rb, target)| Instr::Blt { ra, rb, target }),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (4usize..40).prop_flat_map(|len| {
        let instrs: Vec<_> = (0..len).map(|at| arb_instr(len, at)).collect();
        instrs.prop_map(move |mut code| {
            code.push(Instr::Halt);
            // Clamp forward targets to the halt instruction.
            let last = code.len() - 1;
            for i in &mut code {
                match i {
                    Instr::Beq { target, .. }
                    | Instr::Bne { target, .. }
                    | Instr::Blt { target, .. }
                    | Instr::Bge { target, .. }
                    | Instr::Jmp { target } => *target = (*target).min(last),
                    _ => {}
                }
            }
            Program::new(code)
        })
    })
}

fn machine_outcome(program: &Program, cfg: MtaConfig, arg: u64) -> Option<(Vec<u64>, Vec<u64>)> {
    let mut m = Machine::new(cfg, program.clone()).ok()?;
    m.spawn(0, arg).ok()?;
    let r = m.run(50_000_000);
    if !r.completed || !r.faults.is_empty() {
        return None;
    }
    let mem: Vec<u64> = (0..MEM_WORDS).map(|a| m.memory().load(a)).collect();
    // Registers are gone once the stream halts; compare memory plus the
    // halting guarantee.
    Some((mem, vec![]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Machine memory state equals reference memory state for every
    /// timing configuration.
    #[test]
    fn machine_matches_reference(program in arb_program(), arg in 0u64..100) {
        prop_assume!(program.validate().is_ok());
        let mut ref_mem = mta_sim::Memory::new(MEM_WORDS, 16, 1);
        let ref_out = run_reference(&program, &mut ref_mem, arg, 1_000_000);
        // Only compare halting runs (blocking programs deadlock the
        // machine, faulting ones fault it — both are separately tested).
        prop_assume!(matches!(ref_out, RefOutcome::Halted { .. }));
        let expected: Vec<u64> = (0..MEM_WORDS).map(|a| ref_mem.load(a)).collect();

        for (label, cfg) in [
            ("blocking", MtaConfig { mem_words: MEM_WORDS, ..MtaConfig::tera(1) }),
            (
                "lookahead8",
                MtaConfig { mem_words: MEM_WORDS, lookahead: 8, ..MtaConfig::tera(1) },
            ),
            (
                "two_banks",
                MtaConfig { mem_words: MEM_WORDS, n_banks: 2, ..MtaConfig::tera(1) },
            ),
        ] {
            let got = machine_outcome(&program, cfg, arg);
            prop_assert!(got.is_some(), "{label}: machine did not complete");
            let (mem, _) = got.unwrap();
            prop_assert_eq!(&mem, &expected, "{} memory state diverged", label);
        }
    }

    /// Programs that block in the reference deadlock the machine (timing
    /// must not let them slip through).
    #[test]
    fn blocked_reference_means_machine_deadlock(offset in 0i64..64) {
        let program = Program::new(vec![
            Instr::Load { rd: 2, base: 0, offset },
            Instr::LoadSync { rd: 3, base: 0, offset },
            Instr::LoadSync { rd: 4, base: 0, offset }, // now empty: blocks
            Instr::Halt,
        ]);
        let mut ref_mem = mta_sim::Memory::new(MEM_WORDS, 16, 1);
        let ref_out = run_reference(&program, &mut ref_mem, 0, 10_000);
        prop_assert_eq!(ref_out, RefOutcome::Blocked { at: 2 });

        let mut m = Machine::new(
            MtaConfig { mem_words: MEM_WORDS, ..MtaConfig::tera(1) },
            program,
        ).unwrap();
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        prop_assert!(r.deadlocked);
    }
}
