//! Parallel-tick oracle: `Machine::run_parallel` must be **bit-identical**
//! to the sequential interpreter `Machine::run` — same `RunResult`
//! (cycles, completion/deadlock flags, fault list in the same order, full
//! `SimStats`) and same final memory image (words *and* full/empty bits)
//! — at 1, 2, and 8 host workers, on the kernel corpus and on a
//! fixed-seed random-program fuzz smoke.
//!
//! These tests are the determinism gate named in the PR's acceptance
//! criteria; the `mta_par` phase of `BENCH_harness.json` re-checks the
//! same property on the benchmark kernels.

use mta_sim::ir::{Instr, Program};
use mta_sim::kernels::{
    alu_kernel, chunked_scan_kernel, mem_kernel, mixed_kernel, pipeline_kernel, ray_sweep_kernel,
    reduce_kernel, vector_add_kernel,
};
use mta_sim::{Machine, MtaConfig};

/// A small-memory Tera config so final-memory comparison stays cheap.
fn cfg(n_processors: usize) -> MtaConfig {
    MtaConfig {
        mem_words: 1 << 16,
        ..MtaConfig::tera(n_processors)
    }
}

/// Build a machine, apply the shared setup (empties, input data), spawn
/// the main stream at pc 0.
fn fresh(cfg: &MtaConfig, program: &Program, setup: &dyn Fn(&mut Machine)) -> Machine {
    let mut m = Machine::new(cfg.clone(), program.clone()).expect("machine must validate");
    setup(&mut m);
    m.spawn(0, 0).expect("spawn main stream");
    m
}

fn assert_memory_identical(seq: &Machine, par: &Machine, label: &str) {
    assert_eq!(
        seq.memory().len(),
        par.memory().len(),
        "{label}: memory size"
    );
    for addr in 0..seq.memory().len() {
        assert_eq!(
            seq.memory().load(addr),
            par.memory().load(addr),
            "{label}: word {addr} differs"
        );
        assert_eq!(
            seq.memory().is_full(addr),
            par.memory().is_full(addr),
            "{label}: full/empty bit {addr} differs"
        );
    }
}

/// Run the program sequentially and at 1/2/8 workers; every parallel run
/// must reproduce the sequential result and memory image exactly.
fn assert_parity(
    cfg: &MtaConfig,
    program: &Program,
    max_cycles: u64,
    setup: &dyn Fn(&mut Machine),
    label: &str,
) {
    let mut seq = fresh(cfg, program, setup);
    let expected = seq.run(max_cycles);
    for workers in [1usize, 2, 8] {
        let mut par = fresh(cfg, program, setup);
        let got = par.run_parallel(max_cycles, workers);
        assert_eq!(
            expected, got,
            "{label}: RunResult diverged at {workers} workers"
        );
        assert_memory_identical(&seq, &par, &format!("{label} @ {workers} workers"));
    }
}

const MAX: u64 = 50_000_000;

#[test]
fn alu_kernel_parity() {
    assert_parity(&cfg(2), &alu_kernel(8, 40), MAX, &|_| {}, "alu");
}

#[test]
fn mem_kernel_parity() {
    // stride 1 spreads banks; stride == n_banks hot-banks one of them.
    for stride in [1, 64] {
        assert_parity(
            &cfg(2),
            &mem_kernel(6, 20, stride, 2048),
            MAX,
            &|_| {},
            &format!("mem stride {stride}"),
        );
    }
}

#[test]
fn mixed_kernel_parity() {
    assert_parity(
        &cfg(4),
        &mixed_kernel(12, 15, 4, 4096),
        MAX,
        &|_| {},
        "mixed",
    );
}

#[test]
fn vector_add_parity() {
    let (program, layout) = vector_add_kernel(48, 6);
    assert_parity(
        &cfg(2),
        &program,
        MAX,
        &move |m| {
            for i in 0..layout.n {
                m.memory_mut().store_f64(layout.a_base + i, i as f64 * 0.5);
                m.memory_mut()
                    .store_f64(layout.b_base + i, 100.0 - i as f64);
            }
        },
        "vector_add",
    );
}

#[test]
fn reduce_kernel_parity() {
    let (program, layout) = reduce_kernel(40, 5);
    assert_parity(
        &cfg(2),
        &program,
        MAX,
        &move |m| {
            for i in 0..layout.n {
                m.memory_mut()
                    .store(layout.data_base + i, (i * 7 + 3) as u64);
            }
        },
        "reduce",
    );
}

#[test]
fn pipeline_kernel_parity() {
    // Producer/consumer chains over full/empty words: the sync-heavy case.
    let (program, layout) = pipeline_kernel(4, 12);
    assert_parity(
        &cfg(2),
        &program,
        MAX,
        &move |m| {
            for c in 0..=layout.stages {
                m.memory_mut().set_empty(layout.chan_base + c);
            }
        },
        "pipeline",
    );
}

#[test]
fn chunked_scan_parity() {
    let (program, layout) = chunked_scan_kernel(10, 6, 4);
    assert_parity(
        &cfg(2),
        &program,
        MAX,
        &move |m| {
            for p in 0..layout.n_pairs {
                let start = (p % 3) as u64;
                let end = if p % 2 == 0 { start + 2 } else { start };
                m.memory_mut().store(layout.windows_base + 2 * p, start);
                m.memory_mut().store(layout.windows_base + 2 * p + 1, end);
            }
        },
        "chunked_scan",
    );
}

#[test]
fn ray_sweep_parity() {
    let (program, layout) = ray_sweep_kernel(6, 8, 4);
    assert_parity(
        &cfg(2),
        &program,
        MAX,
        &move |m| {
            for r in 0..layout.n_rays {
                for k in 0..layout.len {
                    let v = ((r * 13 + k * 7) % 31) as f64 - 15.0;
                    m.memory_mut()
                        .store_f64(layout.slopes_base + r * layout.len + k, v);
                }
            }
        },
        "ray_sweep",
    );
}

#[test]
fn lookahead_parity() {
    // Lookahead > 1 exercises the gate-ready reschedule path in phase A.
    let mut c = cfg(2);
    c.lookahead = 4;
    assert_parity(&c, &mem_kernel(6, 20, 1, 2048), MAX, &|_| {}, "lookahead");
}

#[test]
fn timeout_parity() {
    // A budget that expires mid-run: the parallel tick must report the
    // same (clamped) cycle count and the same partial statistics.
    for max in [100, 1_000, 5_000] {
        assert_parity(
            &cfg(2),
            &alu_kernel(8, 10_000),
            max,
            &|_| {},
            &format!("timeout {max}"),
        );
    }
}

#[test]
fn soft_spawn_parity() {
    // More forked workers than hardware contexts: forks overflow into the
    // pending-thread queue and soft-spawn onto freed slots.
    let mut c = cfg(2);
    c.streams_per_processor = 3;
    assert_parity(&c, &alu_kernel(12, 25), MAX, &|_| {}, "soft_spawn");
}

#[test]
fn deadlock_parity_across_processors() {
    // Satellite: every stream parked on a full/empty bit, spread over both
    // processors (fork placement is round-robin), must report
    // `deadlocked = true` at the same cycle with identical fault lists.
    let mut a = mta_sim::asm::Assembler::new();
    a.li(2, 0);
    a.li(3, 4);
    a.label("spawn");
    a.bge_l(2, 3, "spawned");
    a.fork_l("work", 2);
    a.addi(2, 2, 1);
    a.jmp_l("spawn");
    a.label("spawned");
    a.halt();
    a.label("work");
    a.li(4, 1000);
    a.add(4, 4, 1); // worker `id` waits on word 1000 + id ...
    a.load_sync(5, 4, 0); // ... which stays empty forever: deadlock.
    a.halt();
    let program = a.assemble().expect("deadlock program assembles");
    let setup = |m: &mut Machine| {
        for addr in 1000..1004 {
            m.memory_mut().set_empty(addr);
        }
    };
    let mut seq = fresh(&cfg(2), &program, &setup);
    let expected = seq.run(MAX);
    assert!(
        expected.deadlocked && !expected.completed,
        "oracle must deadlock: {expected:?}"
    );
    assert!(
        expected
            .stats
            .streams
            .peak_live_per_processor
            .iter()
            .filter(|&&n| n > 0)
            .count()
            >= 2,
        "deadlocked streams must span at least two processors: {:?}",
        expected.stats.streams.peak_live_per_processor
    );
    for workers in [1usize, 2, 8] {
        let mut par = fresh(&cfg(2), &program, &setup);
        let got = par.run_parallel(MAX, workers);
        assert!(
            got.deadlocked,
            "parallel run must deadlock at {workers} workers"
        );
        assert_eq!(expected, got, "deadlock diverged at {workers} workers");
        assert_memory_identical(&seq, &par, &format!("deadlock @ {workers} workers"));
    }
}

#[test]
fn fault_parity_divide_by_zero() {
    // Worker id 0 divides by its own id: one stream faults, others finish.
    let mut a = mta_sim::asm::Assembler::new();
    a.li(2, 0);
    a.li(3, 4);
    a.label("spawn");
    a.bge_l(2, 3, "spawned");
    a.fork_l("work", 2);
    a.addi(2, 2, 1);
    a.jmp_l("spawn");
    a.label("spawned");
    a.halt();
    a.label("work");
    a.li(4, 100);
    a.div(5, 4, 1); // id 0 => divide by zero fault
    a.halt();
    let program = a.assemble().expect("fault program assembles");
    assert_parity(&cfg(2), &program, MAX, &|_| {}, "div_fault");
}

// ───────────────────────── fixed-seed fuzz smoke ─────────────────────────

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random but structurally valid program: branch targets stay in range,
/// memory traffic lands in a small shared region with a few words left
/// empty, and forks/syncs/divides are all on the menu — so runs exercise
/// completion, timeout, deadlock, and faults, all of which must agree
/// with the oracle bit for bit.
fn random_program(rng: &mut XorShift, len: usize) -> Program {
    let mut code = Vec::with_capacity(len);
    for i in 0..len {
        // Destinations skip r0 (read-only); sources may use it.
        let rd = |rng: &mut XorShift| 1 + rng.below(7) as u8;
        let r = |rng: &mut XorShift| rng.below(8) as u8;
        let target = |rng: &mut XorShift| rng.below(len as u64) as usize;
        // Addresses land in [1000, 1032): overlapping streams contend on
        // data words and full/empty bits.
        let offset = |rng: &mut XorShift| 1000 + rng.below(32) as i64;
        let instr = match rng.below(20) {
            0 => Instr::Li {
                rd: rd(rng),
                imm: rng.below(64) as i64 - 8,
            },
            1 => Instr::Add {
                rd: rd(rng),
                ra: r(rng),
                rb: r(rng),
            },
            2 => Instr::Addi {
                rd: rd(rng),
                ra: r(rng),
                imm: rng.below(16) as i64 - 8,
            },
            3 => Instr::Mul {
                rd: rd(rng),
                ra: r(rng),
                rb: r(rng),
            },
            4 => Instr::Div {
                rd: rd(rng),
                ra: r(rng),
                rb: r(rng),
            },
            5 => Instr::Slt {
                rd: rd(rng),
                ra: r(rng),
                rb: r(rng),
            },
            6 => Instr::FAdd {
                rd: rd(rng),
                ra: r(rng),
                rb: r(rng),
            },
            7 => Instr::Jmp {
                target: target(rng),
            },
            8 => Instr::Beq {
                ra: r(rng),
                rb: r(rng),
                target: target(rng),
            },
            9 => Instr::Bne {
                ra: r(rng),
                rb: r(rng),
                target: target(rng),
            },
            10 | 11 => Instr::Load {
                rd: rd(rng),
                base: 0,
                offset: offset(rng),
            },
            12 | 13 => Instr::Store {
                rs: r(rng),
                base: 0,
                offset: offset(rng),
            },
            14 => Instr::LoadSync {
                rd: rd(rng),
                base: 0,
                offset: offset(rng),
            },
            15 => Instr::StoreSync {
                rs: r(rng),
                base: 0,
                offset: offset(rng),
            },
            16 => Instr::FetchAdd {
                rd: rd(rng),
                base: 0,
                offset: offset(rng),
                rs: r(rng),
            },
            17 => Instr::Fork {
                entry: target(rng),
                arg: r(rng),
            },
            18 => Instr::ReadFF {
                rd: rd(rng),
                base: 0,
                offset: offset(rng),
            },
            _ => {
                if i == len - 1 || rng.below(4) == 0 {
                    Instr::Halt
                } else {
                    Instr::Mov {
                        rd: rd(rng),
                        rs: r(rng),
                    }
                }
            }
        };
        code.push(instr);
    }
    code.push(Instr::Halt);
    Program::new(code)
}

#[test]
fn fuzz_smoke_parity() {
    let mut c = cfg(2);
    c.streams_per_processor = 4; // small so forks overflow into soft spawns
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..25 {
        let seed = rng.next() | 1;
        let program = random_program(&mut XorShift(seed), 30);
        let empties: Vec<usize> = (0..4).map(|k| 1000 + k * 7).collect();
        let setup = move |m: &mut Machine| {
            for &a in &empties {
                m.memory_mut().set_empty(a);
            }
        };
        assert_parity(
            &c,
            &program,
            30_000,
            &setup,
            &format!("fuzz case {case} (seed {seed:#x})"),
        );
    }
}
