//! `mta-run` — assemble and execute a text assembly program on the
//! simulated Tera MTA.
//!
//! ```text
//! mta-run PROG.asm [--procs N] [--streams N] [--lookahead N] [--arg V]
//!                  [--workers N] [--empty ADDR]... [--dump ADDR..ADDR]
//! ```
//!
//! `--workers N` (N > 1) runs the deterministic parallel tick
//! ([`Machine::run_parallel`]) with N host worker threads; the result is
//! bit-identical to the default sequential interpreter.

use mta_sim::asm_text::assemble_text;
use mta_sim::{Machine, MtaConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut cfg = MtaConfig::tera(1);
    let mut arg_val = 0u64;
    let mut workers = 1usize;
    let mut empties: Vec<usize> = Vec::new();
    let mut dump: Option<(usize, usize)> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--procs" => cfg.n_processors = args.next().unwrap().parse().unwrap(),
            "--streams" => cfg.streams_per_processor = args.next().unwrap().parse().unwrap(),
            "--lookahead" => cfg.lookahead = args.next().unwrap().parse().unwrap(),
            "--arg" => arg_val = args.next().unwrap().parse().unwrap(),
            "--workers" => workers = args.next().unwrap().parse().unwrap(),
            "--empty" => empties.push(args.next().unwrap().parse().unwrap()),
            "--dump" => {
                let spec = args.next().unwrap();
                let (a, b) = spec.split_once("..").expect("--dump A..B");
                dump = Some((a.parse().unwrap(), b.parse().unwrap()));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mta-run PROG.asm [--procs N] [--streams N] [--lookahead N] \
                     [--arg V] [--workers N] [--empty ADDR]... [--dump A..B]"
                );
                return;
            }
            p => path = Some(p.to_string()),
        }
    }
    let path = path.expect("usage: mta-run PROG.asm (see --help)");
    let source = std::fs::read_to_string(&path).expect("read program");
    let program = match assemble_text(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}:{e}");
            std::process::exit(1);
        }
    };
    let mut m = Machine::new(cfg.clone(), program).expect("machine");
    for a in empties {
        m.memory_mut().set_empty(a);
    }
    m.spawn(0, arg_val).expect("spawn");
    let r = if workers > 1 {
        m.run_parallel(10_000_000_000, workers)
    } else {
        m.run(10_000_000_000)
    };
    let secs = match r.seconds(cfg.clock_mhz) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "cycles {} ({:.6} s at {} MHz) | instructions {} | utilization {:.1}% | forks {} | sync blocks {}",
        r.cycles,
        secs,
        cfg.clock_mhz,
        r.stats.instructions(),
        100.0 * r.utilization(),
        r.stats.threads.forks,
        r.stats.sync.blocked,
    );
    if r.deadlocked {
        println!("DEADLOCK: all live streams blocked on full/empty bits");
    }
    for f in &r.faults {
        println!("FAULT: {f}");
    }
    if let Some((a, b)) = dump {
        for addr in a..b {
            println!(
                "mem[{addr}] = {} (f64 {:e})",
                m.memory().load(addr),
                m.memory().load_f64(addr)
            );
        }
    }
    if !r.completed && !r.deadlocked {
        std::process::exit(2);
    }
}
