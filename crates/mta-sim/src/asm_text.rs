//! Text assembly syntax for the simulator, so programs can live in files
//! and be run with the `mta-run` binary.
//!
//! One instruction per line; `;` or `#` starts a comment; labels end with
//! `:`. Registers are `r0`..`r31`; immediates are decimal integers or
//! (for `lif`) floating-point literals; memory operands are
//! `offset(rBase)` like classic RISC assemblers.
//!
//! ```text
//! ; sum the integers 1..=n, n passed in r1
//!         li   r2, 0          ; acc
//! loop:   beq  r1, r0, done
//!         add  r2, r2, r1
//!         addi r1, r1, -1
//!         jmp  loop
//! done:   li   r3, 256
//!         store r2, 0(r3)
//!         halt
//! ```

use crate::asm::Assembler;
use crate::ir::{Program, Reg};

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim();
    let num = t
        .strip_prefix('r')
        .or_else(|| t.strip_prefix('R'))
        .ok_or_else(|| err(line, format!("expected register, got {t:?}")))?;
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register {t:?}")))?;
    if n as usize >= crate::ir::NUM_REGS {
        return Err(err(line, format!("register {t} out of range")));
    }
    Ok(n)
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    tok.trim()
        .parse()
        .map_err(|_| err(line, format!("bad integer {tok:?}")))
}

/// Parse a memory operand `offset(rBase)` (offset optional, default 0).
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i64), ParseError> {
    let t = tok.trim();
    let Some(open) = t.find('(') else {
        return Err(err(line, format!("expected offset(rBase), got {t:?}")));
    };
    let Some(stripped) = t.ends_with(')').then(|| &t[open + 1..t.len() - 1]) else {
        return Err(err(line, format!("missing ')' in {t:?}")));
    };
    let off_str = &t[..open];
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str, line)?
    };
    Ok((parse_reg(stripped, line)?, offset))
}

/// Assemble a text program into a validated [`Program`].
///
/// Label misuse is a typed error with the offending source line: defining
/// the same label twice reports the duplicate (and where the first
/// definition was), and branching/jumping/forking to a label that is
/// never defined reports the first line that referenced it. Neither case
/// silently misassembles or panics.
pub fn assemble_text(source: &str) -> Result<Program, ParseError> {
    let mut a = Assembler::new();
    // Label bookkeeping: where each label was defined, and the first line
    // that referenced each label (for undefined-label diagnostics).
    let mut defined: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut referenced: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (i, raw) in source.lines().enumerate() {
        let lineno = i + 1;
        // Strip comments.
        let mut line = raw;
        for marker in [';', '#'] {
            if let Some(pos) = line.find(marker) {
                line = &line[..pos];
            }
        }
        let mut rest = line.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break; // not a label — let the mnemonic parser complain
            }
            if let Some(&first) = defined.get(label) {
                return Err(err(
                    lineno,
                    format!("duplicate label {label:?} (first defined at line {first})"),
                ));
            }
            defined.insert(label.to_string(), lineno);
            a.label(label);
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, args_str) = match rest.find(char::is_whitespace) {
            Some(pos) => (&rest[..pos], rest[pos..].trim()),
            None => (rest, ""),
        };
        let args: Vec<&str> = if args_str.is_empty() {
            Vec::new()
        } else {
            args_str.split(',').collect()
        };
        let want = |n: usize| -> Result<(), ParseError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!("{mnemonic} expects {n} operands, got {}", args.len()),
                ))
            }
        };

        macro_rules! r {
            ($i:expr) => {
                parse_reg(args[$i], lineno)?
            };
        }

        match mnemonic.to_ascii_lowercase().as_str() {
            "li" => {
                want(2)?;
                a.li(r!(0), parse_imm(args[1], lineno)?);
            }
            "lif" => {
                want(2)?;
                let v: f64 = args[1]
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, format!("bad float {:?}", args[1])))?;
                a.lif(r!(0), v);
            }
            "mov" => {
                want(2)?;
                a.mov(r!(0), r!(1));
            }
            "add" => {
                want(3)?;
                a.add(r!(0), r!(1), r!(2));
            }
            "sub" => {
                want(3)?;
                a.sub(r!(0), r!(1), r!(2));
            }
            "mul" => {
                want(3)?;
                a.mul(r!(0), r!(1), r!(2));
            }
            "div" => {
                want(3)?;
                a.div(r!(0), r!(1), r!(2));
            }
            "addi" => {
                want(3)?;
                a.addi(r!(0), r!(1), parse_imm(args[2], lineno)?);
            }
            "slt" => {
                want(3)?;
                a.slt(r!(0), r!(1), r!(2));
            }
            "fadd" => {
                want(3)?;
                a.fadd(r!(0), r!(1), r!(2));
            }
            "fsub" => {
                want(3)?;
                a.fsub(r!(0), r!(1), r!(2));
            }
            "fmul" => {
                want(3)?;
                a.fmul(r!(0), r!(1), r!(2));
            }
            "fdiv" => {
                want(3)?;
                a.fdiv(r!(0), r!(1), r!(2));
            }
            "fmax" => {
                want(3)?;
                a.fmax(r!(0), r!(1), r!(2));
            }
            "fmin" => {
                want(3)?;
                a.fmin(r!(0), r!(1), r!(2));
            }
            "itof" => {
                want(2)?;
                a.itof(r!(0), r!(1));
            }
            "load" => {
                want(2)?;
                let (base, off) = parse_mem(args[1], lineno)?;
                a.load(r!(0), base, off);
            }
            "store" => {
                want(2)?;
                let (base, off) = parse_mem(args[1], lineno)?;
                a.store(r!(0), base, off);
            }
            "loadsync" => {
                want(2)?;
                let (base, off) = parse_mem(args[1], lineno)?;
                a.load_sync(r!(0), base, off);
            }
            "storesync" => {
                want(2)?;
                let (base, off) = parse_mem(args[1], lineno)?;
                a.store_sync(r!(0), base, off);
            }
            "readff" => {
                want(2)?;
                let (base, off) = parse_mem(args[1], lineno)?;
                a.read_ff(r!(0), base, off);
            }
            "put" => {
                want(2)?;
                let (base, off) = parse_mem(args[1], lineno)?;
                a.put(r!(0), base, off);
            }
            "fetchadd" => {
                want(3)?;
                let (base, off) = parse_mem(args[1], lineno)?;
                a.fetch_add(r!(0), base, off, r!(2));
            }
            "jmp" => {
                want(1)?;
                let t = args[0].trim();
                referenced.entry(t.to_string()).or_insert(lineno);
                a.jmp_l(t);
            }
            "beq" => {
                want(3)?;
                let t = args[2].trim();
                referenced.entry(t.to_string()).or_insert(lineno);
                a.beq_l(r!(0), r!(1), t);
            }
            "bne" => {
                want(3)?;
                let t = args[2].trim();
                referenced.entry(t.to_string()).or_insert(lineno);
                a.bne_l(r!(0), r!(1), t);
            }
            "blt" => {
                want(3)?;
                let t = args[2].trim();
                referenced.entry(t.to_string()).or_insert(lineno);
                a.blt_l(r!(0), r!(1), t);
            }
            "bge" => {
                want(3)?;
                let t = args[2].trim();
                referenced.entry(t.to_string()).or_insert(lineno);
                a.bge_l(r!(0), r!(1), t);
            }
            "fork" => {
                want(2)?;
                let t = args[0].trim();
                referenced.entry(t.to_string()).or_insert(lineno);
                a.fork_l(t, r!(1));
            }
            "halt" => {
                want(0)?;
                a.halt();
            }
            other => return Err(err(lineno, format!("unknown mnemonic {other:?}"))),
        }
    }
    // Undefined labels: report the first line that referenced one.
    if let Some((label, &line)) = referenced
        .iter()
        .filter(|(label, _)| !defined.contains_key(*label))
        .min_by_key(|&(_, &line)| line)
    {
        return Err(err(line, format!("undefined label {label:?}")));
    }
    a.assemble().map_err(|message| err(0, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MtaConfig};

    fn run(src: &str, arg: u64) -> Machine {
        let program = assemble_text(src).expect("assembly failed");
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .expect("machine");
        m.spawn(0, arg).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "{r:?}");
        m
    }

    #[test]
    fn sum_program_assembles_and_runs() {
        let src = r#"
            ; sum 1..=n (n in r1) into mem[256]
                    li    r2, 0
            loop:   beq   r1, r0, done
                    add   r2, r2, r1
                    addi  r1, r1, -1
                    jmp   loop
            done:   li    r3, 256
                    store r2, 0(r3)
                    halt
        "#;
        let m = run(src, 10);
        assert_eq!(m.memory().load(256), 55);
    }

    #[test]
    fn memory_operands_parse_offsets() {
        let src = r#"
            li    r2, 100
            li    r3, 42
            store r3, 5(r2)
            load  r4, 5(r2)
            store r4, (r2)
            halt
        "#;
        let m = run(src, 0);
        assert_eq!(m.memory().load(105), 42);
        assert_eq!(m.memory().load(100), 42);
    }

    #[test]
    fn fork_and_fetchadd_work_from_text() {
        let src = r#"
                    li   r2, 0
                    li   r3, 4
            spawn:  bge  r2, r3, fed
                    fork worker, r2
                    addi r2, r2, 1
                    jmp  spawn
            fed:    halt
            worker: li   r4, 300
                    li   r5, 1
                    fetchadd r6, 0(r4), r5
                    halt
        "#;
        let m = run(src, 0);
        assert_eq!(m.memory().load(300), 4);
    }

    #[test]
    fn float_literals_round_trip() {
        let src = r#"
            lif  r2, 1.5
            lif  r3, 2.25
            fadd r4, r2, r3
            li   r5, 64
            store r4, 0(r5)
            halt
        "#;
        let m = run(src, 0);
        assert_eq!(m.memory().load_f64(64), 3.75);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_text("li r2, 1\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = assemble_text("li r99, 1\nhalt\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = assemble_text("load r2, 5\nhalt\n").unwrap_err();
        assert!(e.message.contains("offset(rBase)"));
    }

    #[test]
    fn undefined_label_is_reported() {
        let e = assemble_text("jmp nowhere\nhalt\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn undefined_label_reports_first_referencing_line() {
        // The branch on line 3 and the fork on line 4 both name labels
        // that are never defined; the error must point at line 3 (the
        // first reference), not line 0.
        let e = assemble_text("li r2, 1\nhalt\nbeq r2, r0, missing\nfork ghost, r2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(
            e.message.contains("undefined label") && e.message.contains("missing"),
            "{e}"
        );
    }

    #[test]
    fn duplicate_label_is_a_typed_error_with_both_lines() {
        let e = assemble_text("start: li r2, 1\njmp start\nstart: halt\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(
            e.message.contains("duplicate label")
                && e.message.contains("start")
                && e.message.contains("line 1"),
            "{e}"
        );
    }

    #[test]
    fn duplicate_label_on_one_line_is_rejected() {
        let e = assemble_text("a: a: halt\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("duplicate label"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble_text("# header\n\n  ; nothing\nhalt ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }
}
