//! A Tera MTA processor: 128 hardware stream contexts, one instruction
//! issued per cycle from whichever stream is ready.
//!
//! The processor keeps a FIFO ready queue (streams that may issue now) and
//! a pending heap (streams whose current instruction completes at a known
//! future cycle). Switching between ready streams costs nothing — that is
//! the one-cycle context switch of the architecture. A stream that issues
//! re-enters the pending heap with its completion time; a stream whose
//! synchronized memory operation blocks is *parked* by the machine on the
//! word's waiter list and re-enters through [`Processor::make_ready_at`].

use crate::ir::{Reg, NUM_REGS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One hardware stream: a register set, a program counter, and the
/// lookahead scoreboard (when a register's value arrives; which memory
/// operations are still in flight).
#[derive(Debug, Clone)]
pub struct Stream {
    /// General-purpose registers; `regs[0]` is always zero.
    pub regs: [u64; NUM_REGS],
    /// Index of the next instruction to issue.
    pub pc: usize,
    /// Cycle at which each register's pending result arrives (0 = ready).
    pub reg_ready_at: [u64; NUM_REGS],
    /// Completion cycles of in-flight memory operations (lookahead mode).
    pub outstanding: Vec<u64>,
    /// Set when a full/empty transition wakes this stream; cleared when
    /// its retried instruction executes. A park with the flag still set is
    /// a *repark*: the stream lost the race for the word to another
    /// consumer.
    pub was_woken: bool,
}

impl Stream {
    /// A fresh stream starting at `pc` with `r1 = arg`, other registers 0.
    pub fn new(pc: usize, arg: u64) -> Self {
        let mut regs = [0u64; NUM_REGS];
        regs[1] = arg;
        Self {
            regs,
            pc,
            reg_ready_at: [0; NUM_REGS],
            outstanding: Vec::new(),
            was_woken: false,
        }
    }

    /// Drop completed in-flight operations.
    pub fn prune_outstanding(&mut self, now: u64) {
        self.outstanding.retain(|&t| t > now);
    }

    /// Earliest completion among in-flight operations (`now` if none).
    pub fn earliest_outstanding(&self, now: u64) -> u64 {
        self.outstanding.iter().copied().min().unwrap_or(now)
    }

    /// Latest completion among in-flight operations (`now` if none).
    pub fn latest_outstanding(&self, now: u64) -> u64 {
        self.outstanding.iter().copied().max().unwrap_or(now)
    }

    /// Read a register (`r0` reads zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r as usize]
    }

    /// Write a register; writes to `r0` are discarded.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Read a register as f64.
    #[inline]
    pub fn reg_f(&self, r: Reg) -> f64 {
        f64::from_bits(self.regs[r as usize])
    }

    /// Write a register as f64.
    #[inline]
    pub fn set_reg_f(&mut self, r: Reg, v: f64) {
        self.set_reg(r, v.to_bits());
    }
}

/// Scheduling state of a stream slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    /// In the ready queue or pending heap.
    Scheduled,
    /// Parked on a full/empty waiter list; the machine will re-ready it.
    Parked,
}

/// A processor with a fixed number of hardware stream contexts.
#[derive(Debug)]
pub struct Processor {
    slots: Vec<Option<Stream>>,
    state: Vec<SlotState>,
    ready: VecDeque<usize>,
    pending: BinaryHeap<Reverse<(u64, usize)>>,
    /// Instructions issued so far.
    pub issued: u64,
    /// Instructions issued per hardware stream slot.
    pub issued_per_slot: Vec<u64>,
    /// Number of live (occupied) stream contexts.
    pub live: usize,
    /// High-water mark of simultaneously live streams.
    pub peak_live: usize,
}

impl Processor {
    /// A processor with `n_streams` hardware contexts.
    pub fn new(n_streams: usize) -> Self {
        assert!(n_streams > 0);
        Self {
            slots: (0..n_streams).map(|_| None).collect(),
            state: vec![SlotState::Free; n_streams],
            ready: VecDeque::new(),
            pending: BinaryHeap::new(),
            issued: 0,
            issued_per_slot: vec![0; n_streams],
            live: 0,
            peak_live: 0,
        }
    }

    /// Account one issued instruction to `slot`.
    pub fn record_issue(&mut self, slot: usize) {
        self.issued += 1;
        self.issued_per_slot[slot] += 1;
    }

    /// Number of hardware contexts.
    pub fn n_streams(&self) -> usize {
        self.slots.len()
    }

    /// Whether a free hardware context exists.
    pub fn has_free_slot(&self) -> bool {
        self.live < self.slots.len()
    }

    /// Install a new stream, ready to issue at `ready_at`. Returns the slot
    /// index. Panics if no context is free (callers must check).
    pub fn install(&mut self, stream: Stream, ready_at: u64) -> usize {
        let slot = self
            .state
            .iter()
            .position(|&s| s == SlotState::Free)
            .expect("install: no free stream context");
        self.slots[slot] = Some(stream);
        self.state[slot] = SlotState::Scheduled;
        self.pending.push(Reverse((ready_at, slot)));
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        slot
    }

    /// Remove the stream in `slot` (it halted). Frees the context.
    pub fn remove(&mut self, slot: usize) {
        assert!(self.slots[slot].is_some(), "remove: slot {slot} is empty");
        self.slots[slot] = None;
        self.state[slot] = SlotState::Free;
        self.live -= 1;
    }

    /// Borrow the stream in `slot`.
    pub fn stream(&self, slot: usize) -> &Stream {
        self.slots[slot].as_ref().expect("empty slot")
    }

    /// Borrow the stream in `slot` if the context is occupied.
    pub fn stream_opt(&self, slot: usize) -> Option<&Stream> {
        self.slots[slot].as_ref()
    }

    /// Mutably borrow the stream in `slot`.
    pub fn stream_mut(&mut self, slot: usize) -> &mut Stream {
        self.slots[slot].as_mut().expect("empty slot")
    }

    /// Mark `slot` parked (blocked on a full/empty bit). It will not issue
    /// until [`Processor::make_ready_at`] is called for it.
    pub fn park(&mut self, slot: usize) {
        self.state[slot] = SlotState::Parked;
    }

    /// Reschedule a stream (parked or just-issued) to become issueable at
    /// `at`.
    pub fn make_ready_at(&mut self, slot: usize, at: u64) {
        self.state[slot] = SlotState::Scheduled;
        self.pending.push(Reverse((at, slot)));
    }

    /// Move every pending stream whose time has come into the ready queue.
    fn promote(&mut self, now: u64) {
        while let Some(&Reverse((t, slot))) = self.pending.peek() {
            if t > now {
                break;
            }
            self.pending.pop();
            // A parked slot may still have a stale pending entry if it was
            // parked after being scheduled; skip entries for non-scheduled
            // slots defensively (current machine logic never creates them).
            if self.state[slot] == SlotState::Scheduled && self.slots[slot].is_some() {
                self.ready.push_back(slot);
            }
        }
    }

    /// Pick the stream to issue this cycle, if any (round-robin FIFO over
    /// ready streams).
    pub fn next_to_issue(&mut self, now: u64) -> Option<usize> {
        self.promote(now);
        self.ready.pop_front()
    }

    /// The earliest future cycle at which this processor could issue, given
    /// nothing external changes: `now` if a stream is ready, else the head
    /// of the pending heap. `None` if the processor is fully idle (no
    /// ready, no pending — only parked or free slots).
    pub fn next_event(&mut self, now: u64) -> Option<u64> {
        self.promote(now);
        if !self.ready.is_empty() {
            return Some(now);
        }
        self.pending.peek().map(|&Reverse((t, _))| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_to_zero() {
        let mut s = Stream::new(0, 5);
        assert_eq!(s.reg(1), 5);
        s.set_reg(0, 99);
        assert_eq!(s.reg(0), 0);
    }

    #[test]
    fn f64_register_round_trip() {
        let mut s = Stream::new(0, 0);
        s.set_reg_f(2, 1.25);
        assert_eq!(s.reg_f(2), 1.25);
    }

    #[test]
    fn install_and_issue_in_ready_order() {
        let mut p = Processor::new(4);
        let a = p.install(Stream::new(0, 0), 0);
        let b = p.install(Stream::new(0, 0), 0);
        assert_eq!(p.live, 2);
        assert_eq!(p.next_to_issue(0), Some(a));
        assert_eq!(p.next_to_issue(0), Some(b));
        assert_eq!(p.next_to_issue(0), None);
    }

    #[test]
    fn pending_streams_become_ready_at_their_time() {
        let mut p = Processor::new(2);
        let s = p.install(Stream::new(0, 0), 21);
        assert_eq!(p.next_to_issue(20), None);
        assert_eq!(p.next_to_issue(21), Some(s));
    }

    #[test]
    fn parked_streams_do_not_issue_until_woken() {
        let mut p = Processor::new(2);
        let s = p.install(Stream::new(0, 0), 0);
        assert_eq!(p.next_to_issue(0), Some(s));
        p.park(s);
        // Even far in the future the parked stream stays quiet.
        assert_eq!(p.next_to_issue(1000), None);
        assert_eq!(p.next_event(1000), None);
        p.make_ready_at(s, 1005);
        assert_eq!(p.next_to_issue(1004), None);
        assert_eq!(p.next_to_issue(1005), Some(s));
    }

    #[test]
    fn remove_frees_the_context() {
        let mut p = Processor::new(1);
        let s = p.install(Stream::new(0, 0), 0);
        assert!(!p.has_free_slot());
        p.remove(s);
        assert!(p.has_free_slot());
        assert_eq!(p.live, 0);
        assert_eq!(p.peak_live, 1);
    }

    #[test]
    fn record_issue_tracks_per_slot_counts() {
        let mut p = Processor::new(3);
        let a = p.install(Stream::new(0, 0), 0);
        let b = p.install(Stream::new(0, 0), 0);
        p.record_issue(a);
        p.record_issue(a);
        p.record_issue(b);
        assert_eq!(p.issued, 3);
        assert_eq!(p.issued_per_slot[a], 2);
        assert_eq!(p.issued_per_slot[b], 1);
        assert_eq!(p.issued_per_slot.iter().sum::<u64>(), p.issued);
    }

    #[test]
    fn next_event_reports_pending_head() {
        let mut p = Processor::new(4);
        p.install(Stream::new(0, 0), 30);
        p.install(Stream::new(0, 0), 10);
        assert_eq!(p.next_event(0), Some(10));
    }

    #[test]
    #[should_panic(expected = "no free stream context")]
    fn install_panics_when_full() {
        let mut p = Processor::new(1);
        p.install(Stream::new(0, 0), 0);
        p.install(Stream::new(0, 0), 0);
    }
}
