//! The register IR executed by the simulator.
//!
//! A deliberately small, RISC-style instruction set with the Tera-specific
//! additions that matter to the paper: synchronized (full/empty) memory
//! operations, an atomic fetch-and-add, and hardware thread creation.
//!
//! Each stream has 32 general-purpose 64-bit registers (`r0` is hardwired
//! to zero, as on most RISC machines). Floating-point values live in the
//! same registers as IEEE-754 bit patterns; the `F*` instructions interpret
//! them as `f64`.

/// A register index, `0..NUM_REGS`. Register 0 always reads as zero.
pub type Reg = u8;

/// Number of general-purpose registers per stream.
pub const NUM_REGS: usize = 32;

/// A branch/jump target: an instruction index in the assembled program.
pub type Target = usize;

/// One instruction of the simulator IR.
///
/// Memory addresses are in *words*; the effective address of a memory
/// operation is `regs[base] + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    // ── moves and integer ALU ────────────────────────────────────────────
    /// `rd = imm`
    Li { rd: Reg, imm: i64 },
    /// `rd = rs`
    Mov { rd: Reg, rs: Reg },
    /// `rd = ra + rb` (wrapping)
    Add { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra - rb` (wrapping)
    Sub { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra * rb` (wrapping)
    Mul { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra / rb` (signed; divide-by-zero halts the stream with an error)
    Div { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra + imm` (wrapping)
    Addi { rd: Reg, ra: Reg, imm: i64 },
    /// `rd = (ra < rb) ? 1 : 0` (signed)
    Slt { rd: Reg, ra: Reg, rb: Reg },

    // ── floating point (f64 bit patterns in integer registers) ──────────
    /// `rd = ra + rb` as f64
    FAdd { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra - rb` as f64
    FSub { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra * rb` as f64
    FMul { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra / rb` as f64
    FDiv { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = max(ra, rb)` as f64
    FMax { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = min(ra, rb)` as f64
    FMin { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = (ra < rb) ? 1 : 0` as f64 comparison
    FLt { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = (f64)(i64)ra`
    IToF { rd: Reg, rs: Reg },
    /// `rd = (i64)(f64)ra` (truncating)
    FToI { rd: Reg, rs: Reg },

    // ── control flow ─────────────────────────────────────────────────────
    /// Unconditional jump.
    Jmp { target: Target },
    /// Branch if `ra == rb`.
    Beq { ra: Reg, rb: Reg, target: Target },
    /// Branch if `ra != rb`.
    Bne { ra: Reg, rb: Reg, target: Target },
    /// Branch if `ra < rb` (signed).
    Blt { ra: Reg, rb: Reg, target: Target },
    /// Branch if `ra >= rb` (signed).
    Bge { ra: Reg, rb: Reg, target: Target },

    // ── ordinary memory (ignores full/empty bits) ────────────────────────
    /// `rd = mem[base + offset]`
    Load { rd: Reg, base: Reg, offset: i64 },
    /// `mem[base + offset] = rs`
    Store { rs: Reg, base: Reg, offset: i64 },

    // ── synchronized memory (full/empty bits) ────────────────────────────
    /// Wait until the word is **full**, read it, set it **empty**.
    LoadSync { rd: Reg, base: Reg, offset: i64 },
    /// Wait until the word is **empty**, write it, set it **full**.
    StoreSync { rs: Reg, base: Reg, offset: i64 },
    /// Wait until the word is **full**, read it, *leave it full*.
    ReadFF { rd: Reg, base: Reg, offset: i64 },
    /// Write the word unconditionally and set it **full** (producer
    /// publish; resolves a future).
    Put { rs: Reg, base: Reg, offset: i64 },
    /// Atomic fetch-and-add on a **full** word: `rd = mem[addr]`,
    /// `mem[addr] += rs`; waits if the word is empty.
    FetchAdd {
        rd: Reg,
        base: Reg,
        offset: i64,
        rs: Reg,
    },

    // ── threads ──────────────────────────────────────────────────────────
    /// Create a new stream starting at `entry` with its `r1` set to this
    /// stream's `arg` register (all other registers zero). Costs
    /// `fork_cost` extra cycles on the forking stream. The machine places
    /// the new stream on a processor round-robin; if every hardware stream
    /// context is busy the logical thread queues until one frees (the
    /// "software thread" case, charged `soft_spawn_cost`).
    Fork { entry: Target, arg: Reg },
    /// Terminate this stream.
    Halt,
}

impl Instr {
    /// Whether this instruction accesses memory (and therefore pays memory
    /// latency and occupies a bank).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::LoadSync { .. }
                | Instr::StoreSync { .. }
                | Instr::ReadFF { .. }
                | Instr::Put { .. }
                | Instr::FetchAdd { .. }
        )
    }

    /// Registers this instruction reads (for the lookahead scoreboard).
    /// Up to three; unused slots are `None`. `r0` never creates a
    /// dependence (it is constant).
    pub fn src_regs(&self) -> [Option<Reg>; 3] {
        let s = |r: Reg| if r == 0 { None } else { Some(r) };
        match *self {
            Instr::Li { .. } | Instr::Jmp { .. } | Instr::Halt => [None; 3],
            Instr::Mov { rs, .. } | Instr::IToF { rs, .. } | Instr::FToI { rs, .. } => {
                [s(rs), None, None]
            }
            Instr::Add { ra, rb, .. }
            | Instr::Sub { ra, rb, .. }
            | Instr::Mul { ra, rb, .. }
            | Instr::Div { ra, rb, .. }
            | Instr::Slt { ra, rb, .. }
            | Instr::FAdd { ra, rb, .. }
            | Instr::FSub { ra, rb, .. }
            | Instr::FMul { ra, rb, .. }
            | Instr::FDiv { ra, rb, .. }
            | Instr::FMax { ra, rb, .. }
            | Instr::FMin { ra, rb, .. }
            | Instr::FLt { ra, rb, .. }
            | Instr::Beq { ra, rb, .. }
            | Instr::Bne { ra, rb, .. }
            | Instr::Blt { ra, rb, .. }
            | Instr::Bge { ra, rb, .. } => [s(ra), s(rb), None],
            Instr::Addi { ra, .. } => [s(ra), None, None],
            Instr::Load { base, .. }
            | Instr::LoadSync { base, .. }
            | Instr::ReadFF { base, .. } => [s(base), None, None],
            Instr::Store { rs, base, .. }
            | Instr::StoreSync { rs, base, .. }
            | Instr::Put { rs, base, .. } => [s(rs), s(base), None],
            Instr::FetchAdd { base, rs, .. } => [s(base), s(rs), None],
            Instr::Fork { arg, .. } => [s(arg), None, None],
        }
    }

    /// The register this instruction writes, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        match *self {
            Instr::Li { rd, .. }
            | Instr::Mov { rd, .. }
            | Instr::Add { rd, .. }
            | Instr::Sub { rd, .. }
            | Instr::Mul { rd, .. }
            | Instr::Div { rd, .. }
            | Instr::Addi { rd, .. }
            | Instr::Slt { rd, .. }
            | Instr::FAdd { rd, .. }
            | Instr::FSub { rd, .. }
            | Instr::FMul { rd, .. }
            | Instr::FDiv { rd, .. }
            | Instr::FMax { rd, .. }
            | Instr::FMin { rd, .. }
            | Instr::FLt { rd, .. }
            | Instr::IToF { rd, .. }
            | Instr::FToI { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::LoadSync { rd, .. }
            | Instr::ReadFF { rd, .. }
            | Instr::FetchAdd { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Whether this instruction synchronizes on full/empty bits.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Instr::LoadSync { .. }
                | Instr::StoreSync { .. }
                | Instr::ReadFF { .. }
                | Instr::FetchAdd { .. }
        )
    }
}

/// An assembled program: a flat instruction sequence with resolved branch
/// targets, shared by all streams of a machine.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instructions; `Target`s index into this vector.
    pub code: Vec<Instr>,
}

impl Program {
    /// Wrap a raw instruction sequence (targets must already be resolved).
    pub fn new(code: Vec<Instr>) -> Self {
        Self { code }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Validate static properties: register indices in range, branch
    /// targets inside the program, `r0` never written.
    pub fn validate(&self) -> Result<(), String> {
        let check_reg = |r: Reg, what: &str, i: usize| -> Result<(), String> {
            if (r as usize) >= NUM_REGS {
                Err(format!("instr {i}: {what} register r{r} out of range"))
            } else {
                Ok(())
            }
        };
        let check_rd = |r: Reg, i: usize| -> Result<(), String> {
            check_reg(r, "destination", i)?;
            if r == 0 {
                Err(format!("instr {i}: r0 is read-only"))
            } else {
                Ok(())
            }
        };
        let check_target = |t: Target, i: usize| -> Result<(), String> {
            if t >= self.code.len() {
                Err(format!("instr {i}: branch target {t} out of range"))
            } else {
                Ok(())
            }
        };
        for (i, instr) in self.code.iter().enumerate() {
            match *instr {
                Instr::Li { rd, .. }
                | Instr::IToF { rd, .. }
                | Instr::FToI { rd, .. }
                | Instr::Mov { rd, .. } => check_rd(rd, i)?,
                Instr::Add { rd, ra, rb }
                | Instr::Sub { rd, ra, rb }
                | Instr::Mul { rd, ra, rb }
                | Instr::Div { rd, ra, rb }
                | Instr::Slt { rd, ra, rb }
                | Instr::FAdd { rd, ra, rb }
                | Instr::FSub { rd, ra, rb }
                | Instr::FMul { rd, ra, rb }
                | Instr::FDiv { rd, ra, rb }
                | Instr::FMax { rd, ra, rb }
                | Instr::FMin { rd, ra, rb }
                | Instr::FLt { rd, ra, rb } => {
                    check_rd(rd, i)?;
                    check_reg(ra, "source", i)?;
                    check_reg(rb, "source", i)?;
                }
                Instr::Addi { rd, ra, .. } => {
                    check_rd(rd, i)?;
                    check_reg(ra, "source", i)?;
                }
                Instr::Jmp { target } => check_target(target, i)?,
                Instr::Beq { ra, rb, target }
                | Instr::Bne { ra, rb, target }
                | Instr::Blt { ra, rb, target }
                | Instr::Bge { ra, rb, target } => {
                    check_reg(ra, "source", i)?;
                    check_reg(rb, "source", i)?;
                    check_target(target, i)?;
                }
                Instr::Load { rd, base, .. }
                | Instr::LoadSync { rd, base, .. }
                | Instr::ReadFF { rd, base, .. } => {
                    check_rd(rd, i)?;
                    check_reg(base, "base", i)?;
                }
                Instr::Store { rs, base, .. }
                | Instr::StoreSync { rs, base, .. }
                | Instr::Put { rs, base, .. } => {
                    check_reg(rs, "source", i)?;
                    check_reg(base, "base", i)?;
                }
                Instr::FetchAdd { rd, base, rs, .. } => {
                    check_rd(rd, i)?;
                    check_reg(base, "base", i)?;
                    check_reg(rs, "source", i)?;
                }
                Instr::Fork { entry, arg } => {
                    check_target(entry, i)?;
                    check_reg(arg, "argument", i)?;
                }
                Instr::Halt => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(Instr::Load {
            rd: 1,
            base: 2,
            offset: 0
        }
        .is_memory());
        assert!(Instr::StoreSync {
            rs: 1,
            base: 2,
            offset: 0
        }
        .is_memory());
        assert!(Instr::FetchAdd {
            rd: 1,
            base: 2,
            offset: 0,
            rs: 3
        }
        .is_memory());
        assert!(!Instr::Add {
            rd: 1,
            ra: 2,
            rb: 3
        }
        .is_memory());
        assert!(!Instr::Halt.is_memory());
    }

    #[test]
    fn sync_classification() {
        assert!(Instr::LoadSync {
            rd: 1,
            base: 2,
            offset: 0
        }
        .is_sync());
        assert!(Instr::ReadFF {
            rd: 1,
            base: 2,
            offset: 0
        }
        .is_sync());
        assert!(!Instr::Load {
            rd: 1,
            base: 2,
            offset: 0
        }
        .is_sync());
        assert!(!Instr::Put {
            rs: 1,
            base: 2,
            offset: 0
        }
        .is_sync());
    }

    #[test]
    fn validate_accepts_a_correct_program() {
        let p = Program::new(vec![
            Instr::Li { rd: 1, imm: 5 },
            Instr::Add {
                rd: 2,
                ra: 1,
                rb: 1,
            },
            Instr::Bne {
                ra: 2,
                rb: 0,
                target: 3,
            },
            Instr::Halt,
        ]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_write_to_r0() {
        let p = Program::new(vec![Instr::Li { rd: 0, imm: 5 }, Instr::Halt]);
        assert!(p.validate().unwrap_err().contains("r0"));
    }

    #[test]
    fn validate_rejects_out_of_range_register() {
        let p = Program::new(vec![
            Instr::Add {
                rd: 40,
                ra: 1,
                rb: 2,
            },
            Instr::Halt,
        ]);
        assert!(p.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_rejects_bad_branch_target() {
        let p = Program::new(vec![Instr::Jmp { target: 99 }]);
        assert!(p.validate().unwrap_err().contains("target"));
    }
}
