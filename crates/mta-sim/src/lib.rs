//! # mta-sim — a cycle-level simulator of the Tera MTA
//!
//! The paper evaluates the first installed Tera MTA (San Diego Supercomputer
//! Center, two processors). No MTA hardware exists today, so this crate
//! implements the architectural mechanisms the paper's findings rest on:
//!
//! * up to 256 **processors**, each with 128 hardware **streams**
//!   (instruction stream + register set) — [`processor`];
//! * **one-cycle switching** between streams: each cycle a processor issues
//!   one instruction from some ready stream; a stream that has issued
//!   cannot issue again for 21 cycles (the pipeline depth), so a
//!   single-threaded program gets at most 1/21 ≈ 5 % of a processor —
//!   exactly the paper's §5 observation;
//! * a flat, **cache-less shared memory**, 64-way interleaved into banks
//!   with finite service rate — [`memory`]; memory latency is masked only
//!   by having other streams to issue from;
//! * a **full/empty bit on every word**, giving one-instruction
//!   producer/consumer synchronization, `fetch_add`, and futures — the
//!   fine-grained synchronization the paper's Tera-only program variants
//!   use;
//! * hardware **thread creation** in a few cycles ([`ir::Instr::Fork`]),
//!   versus tens of thousands of cycles for OS threads on the conventional
//!   platforms.
//!
//! Programs for the simulator are written in a small register IR
//! ([`ir::Instr`]) assembled with [`asm::Assembler`]; [`kernels`] contains
//! ready-made kernels (vector ops, reductions, producer/consumer chains,
//! miniature versions of both C3I benchmarks) used by tests and
//! benchmarks. The simulator is fully deterministic: the same program and
//! configuration always produce the same cycle counts.
//!
//! The simulator is used two ways by the rest of the workspace:
//!
//! 1. directly, to reproduce the paper's microarchitectural claims
//!    (single-stream utilization ≈ 5 %, ~80 streams for full utilization,
//!    one-cycle synchronization), and
//! 2. to validate the *analytic* Tera model in `eval-core` that scales
//!    those mechanisms up to the full benchmark runs of Tables 5, 6
//!    and 11.
//!
//! # Quick example
//!
//! Run the mixed utilization kernel single-streamed on one processor and
//! observe the §5 ceiling — one stream can issue at most once per
//! 21-cycle pipeline, so utilization sits below ~5%:
//!
//! ```
//! use mta_sim::{kernels, MtaConfig};
//!
//! let cfg = MtaConfig { mem_words: 1 << 16, ..MtaConfig::tera(1) };
//! let program = kernels::mixed_kernel(1, 200, 3, 4096);
//! let (_, result) = kernels::run_kernel(cfg, program, &[]);
//! assert!(result.completed);
//! assert!(result.utilization() < 0.06);
//! ```

pub mod asm;
pub mod asm_text;
pub mod interp;
pub mod ir;
pub mod kernels;
pub mod machine;
pub mod memory;
pub mod processor;

pub use asm::Assembler;
pub use ir::{Instr, Program, Reg};
pub use machine::{
    ClockError, InstrMix, Machine, MtaConfig, RunResult, SimStats, StreamStats, SyncStats,
    ThreadStats,
};
pub use memory::{MemStats, Memory};
