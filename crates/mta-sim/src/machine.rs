//! The whole machine: processors + interleaved memory + thread placement,
//! stepped cycle by cycle (with fast-forward over globally idle gaps).
//!
//! Timing model (defaults chosen to match the published MTA numbers and
//! the paper's observations):
//!
//! * every instruction occupies its stream for `issue_latency` = 21 cycles
//!   (the pipeline depth — a lone stream issues at most once per 21
//!   cycles ⇒ ≈5 % single-thread utilization, §5/§7 of the paper);
//! * memory operations additionally pay `mem_extra_latency` network/memory
//!   cycles plus bank queueing (64-way interleaved, `bank_service` cycles
//!   per access), ≈70 cycles uncontended — maskable only by other streams;
//! * synchronized operations on a word in the wrong full/empty state park
//!   the stream on the word's waiter list; the complementary transition
//!   re-readies it `wake_latency` cycles later (synchronization itself is
//!   a one-instruction, few-cycle affair — the MTA strength the paper
//!   highlights);
//! * `Fork` creates a hardware stream in `fork_cost` = 2 cycles while
//!   contexts are free, then falls back to queued software threads at
//!   `soft_spawn_cost` (the paper's 50–100 cycle software threads).

use crate::ir::{Instr, Program};
use crate::memory::Memory;
use crate::processor::{Processor, Stream};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use sthreads::{scope_threads, SpinBarrier};

/// Machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MtaConfig {
    /// Number of processors (the SDSC machine had 2; up to 256).
    pub n_processors: usize,
    /// Hardware stream contexts per processor (128 on the MTA).
    pub streams_per_processor: usize,
    /// Clock rate, for converting cycles to seconds (255 MHz).
    pub clock_mhz: f64,
    /// Cycles between consecutive issues of one stream (pipeline depth).
    pub issue_latency: u64,
    /// Extra network + memory-pipeline cycles for a memory operation
    /// beyond bank service.
    pub mem_extra_latency: u64,
    /// Cycles a bank is busy per access.
    pub bank_service: u64,
    /// Number of interleaved memory banks.
    pub n_banks: usize,
    /// Extra cycles charged to a `Fork` that gets a hardware context.
    pub fork_cost: u64,
    /// Delay before a queued software thread starts on a freed context.
    pub soft_spawn_cost: u64,
    /// Delay from a full/empty transition to a parked stream re-issuing.
    pub wake_latency: u64,
    /// Memory size in words.
    pub mem_words: usize,
    /// Explicit-dependence lookahead: how many memory operations one
    /// stream may have outstanding while continuing to issue independent
    /// instructions. `1` disables lookahead (every instruction waits for
    /// the previous one — the behaviour the paper's measurements imply
    /// for the compiled benchmark code); the MTA hardware supported up
    /// to 8, encoded by the compiler in each instruction.
    pub lookahead: u64,
}

impl MtaConfig {
    /// The published Tera MTA parameters with `n_processors` processors.
    pub fn tera(n_processors: usize) -> Self {
        Self {
            n_processors,
            streams_per_processor: 128,
            clock_mhz: 255.0,
            issue_latency: 21,
            mem_extra_latency: 66,
            bank_service: 4,
            n_banks: 64,
            fork_cost: 2,
            soft_spawn_cost: 75,
            wake_latency: 3,
            mem_words: 1 << 22,
            lookahead: 1,
        }
    }

    /// Uncontended memory-operation latency (bank service + network).
    pub fn mem_latency(&self) -> u64 {
        self.bank_service + self.mem_extra_latency
    }
}

impl Default for MtaConfig {
    fn default() -> Self {
        Self::tera(1)
    }
}

/// Machine counters of one run, grouped by subsystem.
///
/// This is the simulator's analog of `sthreads::stats` on the host: the
/// paper's architecture-level quantities — issue-slot usage per stream
/// (§5's 1/21 single-stream ceiling), memory-bank queueing (§4's
/// interleaving), and full/empty retry traffic (§6's one-instruction
/// synchronization) — surfaced as structured data instead of a flat bag
/// of ad-hoc fields.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SimStats {
    /// Issue-slot accounting per processor and per hardware stream slot.
    pub streams: StreamStats,
    /// Thread-creation traffic (hardware forks vs queued software threads).
    pub threads: ThreadStats,
    /// Full/empty-bit synchronization traffic.
    pub sync: SyncStats,
    /// Memory-system counters, including the bank queue-depth histogram.
    pub memory: crate::memory::MemStats,
    /// Instructions issued by kind: ALU/branch, plain memory,
    /// synchronized memory, thread control (fork/halt).
    pub mix: InstrMix,
}

/// Where the machine's issue slots went.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StreamStats {
    /// Instructions issued, per processor.
    pub issued_per_processor: Vec<u64>,
    /// Instructions issued per hardware stream slot, per processor. A
    /// slot is reused by successive streams, so this is issue pressure on
    /// the *context*, the quantity §5's utilization argument is about.
    pub issued_per_slot: Vec<Vec<u64>>,
    /// High-water mark of live streams, per processor.
    pub peak_live_per_processor: Vec<usize>,
}

impl StreamStats {
    /// Total instructions issued across processors.
    pub fn instructions(&self) -> u64 {
        self.issued_per_processor.iter().sum()
    }

    /// Per-processor fraction of issue slots used over `cycles`.
    pub fn issue_slot_utilization(&self, cycles: u64) -> Vec<f64> {
        self.issued_per_processor
            .iter()
            .map(|&n| {
                if cycles == 0 {
                    0.0
                } else {
                    n as f64 / cycles as f64
                }
            })
            .collect()
    }
}

/// Thread-creation counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStats {
    /// Hardware forks that got a free stream context (few cycles each).
    pub forks: u64,
    /// Logical threads that had to queue for a context (software
    /// threads, `soft_spawn_cost` cycles — the paper's 50–100 cycles).
    pub soft_spawns: u64,
}

/// Full/empty-bit synchronization counters. A synchronized operation that
/// finds the wrong state parks with its pc unchanged and *retries* the
/// whole instruction when the complementary transition wakes it, so
/// `blocked` is exactly the full/empty retry count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Synchronized operations that found the wrong full/empty state and
    /// parked for retry.
    pub blocked: u64,
    /// Streams re-readied by full/empty transitions.
    pub wakes: u64,
    /// Woken streams whose retry found the wrong state *again* (lost the
    /// race to another consumer) and re-parked — contention, not just
    /// ordering.
    pub reparks: u64,
}

/// Issued-instruction mix.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InstrMix {
    /// ALU, float, move, and branch instructions.
    pub alu: u64,
    /// Plain loads and stores.
    pub memory: u64,
    /// Full/empty-synchronized operations (incl. fetch-add, put).
    pub sync: u64,
    /// Forks and halts.
    pub thread: u64,
}

impl InstrMix {
    /// Fraction of issued instructions that touch memory (plain + sync).
    pub fn mem_fraction(&self) -> f64 {
        let total = self.alu + self.memory + self.sync + self.thread;
        if total == 0 {
            0.0
        } else {
            (self.memory + self.sync) as f64 / total as f64
        }
    }
}

impl SimStats {
    /// Total instructions issued across processors.
    pub fn instructions(&self) -> u64 {
        self.streams.instructions()
    }
}

/// Outcome of [`Machine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles elapsed until the last stream halted (or the run aborted).
    pub cycles: u64,
    /// Whether every stream halted normally.
    pub completed: bool,
    /// Whether the run aborted because all live streams were parked on
    /// full/empty bits with nothing to wake them.
    pub deadlocked: bool,
    /// Streams killed by faults (address/divide errors), with messages.
    pub faults: Vec<String>,
    /// Machine counters for the run.
    pub stats: SimStats,
}

impl RunResult {
    /// Machine-wide processor utilization: issued instructions over issue
    /// slots (`cycles × processors`).
    pub fn utilization(&self) -> f64 {
        let n = self.stats.streams.issued_per_processor.len() as f64;
        if self.cycles == 0 || n == 0.0 {
            return 0.0;
        }
        self.stats.instructions() as f64 / (self.cycles as f64 * n)
    }

    /// Wall-clock seconds at `clock_mhz`.
    ///
    /// A non-finite or non-positive clock rate is a configuration error,
    /// not a measurement: dividing by it would yield `inf`/`NaN` that
    /// flows silently into downstream CSVs, so it is rejected as a typed
    /// [`ClockError`] instead.
    pub fn seconds(&self, clock_mhz: f64) -> Result<f64, ClockError> {
        if !clock_mhz.is_finite() || clock_mhz <= 0.0 {
            return Err(ClockError { clock_mhz });
        }
        Ok(self.cycles as f64 / (clock_mhz * 1e6))
    }
}

/// A degenerate clock rate passed to [`RunResult::seconds`]: zero,
/// negative, or non-finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockError {
    /// The rejected clock rate, in MHz.
    pub clock_mhz: f64,
}

impl std::fmt::Display for ClockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "clock rate must be finite and positive, got {} MHz",
            self.clock_mhz
        )
    }
}

impl std::error::Error for ClockError {}

#[derive(Debug, Default)]
struct WaitLists {
    on_full: VecDeque<(usize, usize)>,
    on_empty: VecDeque<(usize, usize)>,
}

/// The simulated machine.
pub struct Machine {
    config: MtaConfig,
    program: Program,
    memory: Memory,
    processors: Vec<Processor>,
    waiters: HashMap<usize, WaitLists>,
    pending_threads: VecDeque<(usize, u64)>,
    next_place: usize,
    cycle: u64,
    faults: Vec<String>,
    forks: u64,
    soft_spawns: u64,
    sync_blocks: u64,
    wakes: u64,
    reparks: u64,
    mix: InstrMix,
    /// Live, unparked streams whose *next* instruction is a `Fork`.
    /// Maintained at every pc transition (install, issue, park, wake,
    /// removal) in both run modes; [`Machine::run_parallel`] sizes its
    /// event windows from these counts in O(1) — a fork can install a
    /// stream `fork_cost` cycles after issuing, so windows shrink to
    /// `fork_cost` exactly while some stream is about to fork.
    armed_forks: usize,
    /// Live, unparked streams whose next instruction is a full/empty
    /// operation (`LoadSync`, `StoreSync`, `ReadFF`, `Put`, `FetchAdd`) —
    /// a commit can wake waiters `wake_latency` cycles later, so windows
    /// shrink to `wake_latency` while one is armed. See
    /// [`Machine::armed_forks`].
    armed_syncs: usize,
}

impl Machine {
    /// Build a machine for `program` under `config`. The program is
    /// validated.
    pub fn new(config: MtaConfig, program: Program) -> Result<Self, String> {
        program.validate()?;
        let memory = Memory::new(config.mem_words, config.n_banks, config.bank_service);
        let processors = (0..config.n_processors)
            .map(|_| Processor::new(config.streams_per_processor))
            .collect();
        Ok(Self {
            config,
            program,
            memory,
            processors,
            waiters: HashMap::new(),
            pending_threads: VecDeque::new(),
            next_place: 0,
            cycle: 0,
            faults: Vec::new(),
            forks: 0,
            soft_spawns: 0,
            sync_blocks: 0,
            wakes: 0,
            reparks: 0,
            mix: InstrMix::default(),
            armed_forks: 0,
            armed_syncs: 0,
        })
    }

    /// Count the stream now sitting (live and unparked) at `pc` into the
    /// armed-instruction counters.
    fn arm(&mut self, pc: usize) {
        match self.program.code.get(pc).copied() {
            Some(Instr::Fork { .. }) => self.armed_forks += 1,
            Some(i) if is_full_empty(i) => self.armed_syncs += 1,
            _ => {}
        }
    }

    /// Remove a stream previously counted at `pc` (it issued past the
    /// instruction, parked, or was removed) from the armed counters. In
    /// release builds an unbalanced call wraps the count huge, which only
    /// narrows parallel-tick windows — conservative, never unsound.
    fn disarm(&mut self, pc: usize) {
        match self.program.code.get(pc).copied() {
            Some(Instr::Fork { .. }) => self.armed_forks = self.armed_forks.wrapping_sub(1),
            Some(i) if is_full_empty(i) => self.armed_syncs = self.armed_syncs.wrapping_sub(1),
            _ => {}
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MtaConfig {
        &self.config
    }

    /// Read access to memory (for initializing inputs / reading results).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Write access to memory (for initializing inputs).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Start a stream at instruction `entry` with `r1 = arg`, placed
    /// round-robin. Returns an error if every context on every processor
    /// is busy (initial spawns should never queue).
    pub fn spawn(&mut self, entry: usize, arg: u64) -> Result<(), String> {
        if entry >= self.program.len() {
            return Err(format!("spawn entry {entry} out of range"));
        }
        let n = self.processors.len();
        for i in 0..n {
            let p = (self.next_place + i) % n;
            if self.processors[p].has_free_slot() {
                self.processors[p].install(Stream::new(entry, arg), self.cycle);
                self.arm(entry);
                self.next_place = (p + 1) % n;
                return Ok(());
            }
        }
        Err("no free stream context for initial spawn".to_string())
    }

    fn live_total(&self) -> usize {
        self.processors.iter().map(|p| p.live).sum()
    }

    /// Run until every stream halts, a deadlock is detected, or
    /// `max_cycles` elapses.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let mut completed = false;
        let mut deadlocked = false;
        while self.live_total() > 0 || !self.pending_threads.is_empty() {
            if self.cycle >= max_cycles {
                break;
            }
            let mut any = false;
            for p in 0..self.processors.len() {
                // Try ready streams until one actually issues; streams
                // blocked on lookahead dependences are rescheduled at
                // their dependence time and do not consume the issue slot.
                while let Some(slot) = self.processors[p].next_to_issue(self.cycle) {
                    if self.try_issue(p, slot) {
                        any = true;
                        break;
                    }
                }
            }
            if any {
                self.cycle += 1;
                continue;
            }
            // Nothing issued: fast-forward to the next event, or detect
            // deadlock (only parked streams remain).
            let now = self.cycle;
            let next = self
                .processors
                .iter_mut()
                .filter_map(|p| p.next_event(now))
                .min();
            match next {
                // Clamp the jump to the budget: a fast-forward past
                // `max_cycles` would make a timed-out run report more
                // cycles than it was allowed to spend, skewing
                // `seconds()`/`utilization()` in sweep tables.
                Some(t) => self.cycle = t.max(now + 1).min(max_cycles),
                None => {
                    deadlocked = true;
                    break;
                }
            }
        }
        if self.live_total() == 0 && self.pending_threads.is_empty() {
            completed = true;
        }
        self.result(completed, deadlocked)
    }

    /// Assemble the [`RunResult`] for the machine's current state.
    fn result(&self, completed: bool, deadlocked: bool) -> RunResult {
        RunResult {
            cycles: self.cycle,
            completed,
            deadlocked,
            faults: self.faults.clone(),
            stats: SimStats {
                streams: StreamStats {
                    issued_per_processor: self.processors.iter().map(|p| p.issued).collect(),
                    issued_per_slot: self
                        .processors
                        .iter()
                        .map(|p| p.issued_per_slot.clone())
                        .collect(),
                    peak_live_per_processor: self.processors.iter().map(|p| p.peak_live).collect(),
                },
                threads: ThreadStats {
                    forks: self.forks,
                    soft_spawns: self.soft_spawns,
                },
                sync: SyncStats {
                    blocked: self.sync_blocks,
                    wakes: self.wakes,
                    reparks: self.reparks,
                },
                memory: self.memory.stats(),
                mix: self.mix,
            },
        }
    }

    /// Run the machine with the barriered two-phase parallel tick,
    /// producing output **bit-identical** to [`Machine::run`] — the same
    /// final memory, `SimStats`, fault list, and cycle count — for every
    /// `n_workers`.
    ///
    /// The tick advances all processors through a dynamically sized
    /// *event window* per barrier round:
    ///
    /// * **Phase A** (parallel): each worker owns a disjoint chunk of
    ///   processors and advances each one cycle-by-cycle through the
    ///   window, fully executing stream-local instructions
    ///   (`exec_local`) and recording a `(cycle, processor, slot)`
    ///   *proposal* for every shared-effect issue (memory, full/empty,
    ///   fork/halt, faults). Issue selection, the lookahead gate, and
    ///   local execution read only the processor's own state.
    /// * **Phase B** (serial): the coordinator commits the proposals in
    ///   `(cycle, processor)` order through the sequential
    ///   `Machine::execute` — the identical order the sequential loop
    ///   visits them in, so bank scheduling, full/empty transitions,
    ///   waiter wakes, thread placement, and fault ordering are
    ///   reproduced exactly.
    ///
    /// Determinism rests on one invariant: every cross-stream effect a
    /// commit at cycle `c` produces lands at or after the window's end —
    /// so no phase-A work is ever invalidated and no rollback is needed.
    /// The window is sized to make that true:
    ///
    /// * a window never exceeds `issue_latency`, so every stream issues
    ///   at most once per window, and the instruction it issues is the
    ///   one at its pc when the window began;
    /// * each instruction therefore has a known *effect class* — the
    ///   earliest relative cycle at which its commit can touch another
    ///   stream: `fork_cost` for `Fork` (the installed stream becomes
    ///   runnable), `wake_latency` for the full/empty operations (a
    ///   transition can wake waiters), unbounded for everything else
    ///   (plain memory operations reschedule only their own stream, at
    ///   `≥ c + issue_latency`, and bank state is phase-B-serial);
    /// * the machine tracks, incrementally at every pc transition, how
    ///   many runnable streams currently sit at a `Fork`
    ///   (`Machine::arm`, `armed_forks`) or at a full/empty
    ///   instruction (`armed_syncs`). Phase A contributes its half of
    ///   the updates through per-worker deltas (local execution can only
    ///   move a stream *onto* an armed instruction), and phase B's
    ///   commits, wakes, parks, and installs maintain the counters
    ///   directly — so sizing the next window is O(1) and exact.
    ///
    /// The next window is `issue_latency`, capped by `fork_cost` while
    /// any stream is about to fork, by `wake_latency` while any is about
    /// to touch a full/empty bit, and by `soft_spawn_cost` while
    /// software-pending threads exist (any commit may fault, freeing a
    /// slot and spawning one). A sync- and fork-free steady state runs
    /// `issue_latency`-cycle windows. Configurations where any of these
    /// latencies is zero (or a single processor) fall back to the
    /// sequential loop.
    ///
    /// Between windows the coordinator *event-horizon batches*: when a
    /// window ends with no stream ready before some future cycle `t`, all
    /// processors jump straight to `t` (the sequential loop's
    /// fast-forward, applied globally), so fully idle stretches cost one
    /// barrier round instead of one round per window.
    pub fn run_parallel(&mut self, max_cycles: u64, n_workers: usize) -> RunResult {
        let min_window = self
            .config
            .wake_latency
            .min(self.config.fork_cost)
            .min(self.config.soft_spawn_cost)
            .min(self.config.issue_latency);
        let n_procs = self.processors.len();
        if min_window == 0 || n_procs <= 1 {
            // No safe window (some cross-stream effect could land in the
            // cycle it issues) or nothing to split: the sequential loop
            // is the semantics.
            return self.run(max_cycles);
        }
        let n_workers = n_workers.clamp(1, n_procs);
        // Read-only copies for phase A, so workers never reach through
        // the machine for the program or timing parameters.
        let program = self.program.clone();
        let config = self.config.clone();
        if n_workers == 1 {
            // A single worker needs none of the scaffolding below: drive
            // the same windowed two-phase tick inline — phase A over
            // every processor, then the serial commit — with no barrier,
            // control block, or locks. Besides being faster, this keeps
            // the `mta_par` determinism gate honest on single-core
            // hosts, where the measured cost is the windowing itself.
            let mut out = WindowOut::default();
            let mut drv = WindowDriver::default();
            while let Some((start, end)) = drv.next_window(self, max_cycles) {
                for p in 0..n_procs {
                    phase_a(
                        &mut self.processors[p],
                        p,
                        &program,
                        &config,
                        start..end,
                        &mut out,
                    );
                }
                drv.absorb(self, &mut out);
                if !drv.commit(self, start, end, max_cycles) {
                    break;
                }
            }
            drv.report_stats();
            return self.result(drv.completed, drv.deadlocked);
        }
        let ctl = Mutex::new(WindowCtl {
            start: 0,
            end: 0,
            stop: false,
        });
        let barrier = SpinBarrier::new(n_workers);
        let outs: Vec<Mutex<WindowOut>> = (0..n_workers)
            .map(|_| Mutex::new(WindowOut::default()))
            .collect();
        let outcome = Mutex::new((false, false));
        let procs = ProcsPtr(self.processors.as_mut_ptr());
        let me = MachinePtr(self as *mut Machine);

        let phase_a_chunk = |w: usize, start: u64, end: u64| {
            let out = &mut *outs[w].lock().unwrap();
            for p in sthreads::chunk_range(w, n_procs, n_workers) {
                // SAFETY: barrier protocol. Phase A runs strictly between
                // two barrier crossings, during which worker `w` is the
                // only thread touching processors in its (disjoint) chunk
                // and the coordinator does not touch the machine at all.
                let proc = unsafe { &mut *procs.at(p) };
                phase_a(proc, p, &program, &config, start..end, out);
            }
        };

        scope_threads(n_workers, |w| {
            if w == 0 {
                // Logical thread 0 is the coordinator: it sequences
                // windows, participates in phase A on its own chunk, and
                // runs phase B alone.
                let mut drv = WindowDriver::default();
                loop {
                    let next = {
                        // SAFETY: outside phase A the workers are parked
                        // at the window barrier and hold no references
                        // into the machine; the coordinator has exclusive
                        // access.
                        let m = unsafe { &mut *me.get() };
                        drv.next_window(m, max_cycles)
                    };
                    let Some((start, end)) = next else { break };
                    {
                        let mut c = ctl.lock().unwrap();
                        c.start = start;
                        c.end = end;
                    }
                    barrier.wait(); // workers read ctl and enter phase A
                    phase_a_chunk(0, start, end);
                    barrier.wait(); // phase A quiesced on every worker
                                    // SAFETY: as above — workers are parked again.
                    let m = unsafe { &mut *me.get() };
                    for o in &outs {
                        drv.absorb(m, &mut o.lock().unwrap());
                    }
                    if !drv.commit(m, start, end, max_cycles) {
                        break;
                    }
                }
                drv.report_stats();
                ctl.lock().unwrap().stop = true;
                barrier.wait(); // release workers into the stop check
                *outcome.lock().unwrap() = (drv.completed, drv.deadlocked);
            } else {
                loop {
                    barrier.wait();
                    let (start, end, stop) = {
                        let c = ctl.lock().unwrap();
                        (c.start, c.end, c.stop)
                    };
                    if stop {
                        break;
                    }
                    phase_a_chunk(w, start, end);
                    barrier.wait();
                }
            }
        });
        let (completed, deadlocked) = *outcome.lock().unwrap();
        self.result(completed, deadlocked)
    }

    /// Kill the stream with a fault message.
    fn fault(&mut self, p: usize, slot: usize, msg: String) {
        self.faults.push(format!("proc {p} slot {slot}: {msg}"));
        let pc = self.processors[p].stream(slot).pc;
        self.disarm(pc);
        self.processors[p].remove(slot);
        self.start_pending_if_any(p);
    }

    fn start_pending_if_any(&mut self, p: usize) {
        if let Some((entry, arg)) = self.pending_threads.pop_front() {
            let at = self.cycle + self.config.soft_spawn_cost;
            self.processors[p].install(Stream::new(entry, arg), at);
            self.arm(entry);
        }
    }

    fn wake_on_full(&mut self, addr: usize) {
        if let Some(w) = self.waiters.get_mut(&addr) {
            let at = self.cycle + self.config.wake_latency;
            while let Some((wp, wslot)) = w.on_full.pop_front() {
                self.processors[wp].stream_mut(wslot).was_woken = true;
                self.processors[wp].make_ready_at(wslot, at);
                // A parked stream sits at the full/empty instruction it
                // blocked on; waking re-arms it.
                self.armed_syncs += 1;
                self.wakes += 1;
            }
        }
    }

    fn wake_on_empty(&mut self, addr: usize) {
        if let Some(w) = self.waiters.get_mut(&addr) {
            let at = self.cycle + self.config.wake_latency;
            while let Some((wp, wslot)) = w.on_empty.pop_front() {
                self.processors[wp].stream_mut(wslot).was_woken = true;
                self.processors[wp].make_ready_at(wslot, at);
                // See `wake_on_full`: waking re-arms the sync retry.
                self.armed_syncs += 1;
                self.wakes += 1;
            }
        }
    }

    /// Memory-op completion time: bank queueing + service + network.
    fn mem_ready_at(&mut self, addr: usize) -> u64 {
        let t = self.memory.schedule_access(addr, self.cycle);
        (t.done + self.config.mem_extra_latency).max(self.cycle + self.config.issue_latency)
    }

    /// Check lookahead dependences for the stream's next instruction and
    /// either execute it (true) or reschedule the stream at its
    /// dependence-ready time (false).
    fn try_issue(&mut self, p: usize, slot: usize) -> bool {
        if self.config.lookahead > 1 {
            let pc = self.processors[p].stream(slot).pc;
            if let Some(&instr) = self.program.code.get(pc) {
                let now = self.cycle;
                let lookahead = self.config.lookahead as usize;
                let wait =
                    gate_ready_at(self.processors[p].stream_mut(slot), instr, now, lookahead);
                if wait > now {
                    self.processors[p].make_ready_at(slot, wait);
                    return false;
                }
            }
        }
        self.execute(p, slot);
        true
    }

    /// Execute one instruction of the stream in `(p, slot)` at the current
    /// cycle.
    fn execute(&mut self, p: usize, slot: usize) {
        let pc = self.processors[p].stream(slot).pc;
        let Some(&instr) = self.program.code.get(pc) else {
            self.fault(p, slot, format!("pc {pc} ran off the end of the program"));
            return;
        };
        self.processors[p].record_issue(slot);
        if instr.is_sync() {
            self.mix.sync += 1;
        } else if instr.is_memory() {
            self.mix.memory += 1;
        } else if matches!(instr, Instr::Fork { .. } | Instr::Halt) {
            self.mix.thread += 1;
        } else {
            self.mix.alu += 1;
        }

        // Address computation for memory ops, with bounds checking.
        let addr_of = |m: &Machine, base: crate::ir::Reg, offset: i64| -> Result<usize, String> {
            let a = m.processors[p].stream(slot).reg(base) as i64 + offset;
            if a < 0 {
                return Err(format!("negative address {a}"));
            }
            let a = a as usize;
            m.memory.check(a)?;
            Ok(a)
        };

        let issue_done = self.cycle + self.config.issue_latency;
        let mut ready_at = issue_done;
        let mut next_pc = pc + 1;
        let mut halted = false;
        let mut parked = false;

        match instr {
            // Divide-by-zero faults (a shared effect on the machine-wide
            // fault list); every other division is stream-local and is
            // handled by `exec_local` in the catch-all arm below.
            Instr::Div { rb, .. } if self.processors[p].stream(slot).reg(rb) == 0 => {
                self.fault(p, slot, "divide by zero".into());
                return;
            }
            Instr::Load { rd, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    let v = self.memory.load(addr);
                    let completion = self.mem_ready_at(addr);
                    let s = self.processors[p].stream_mut(slot);
                    s.set_reg(rd, v);
                    if self.config.lookahead > 1 {
                        // Pipelined: the stream keeps issuing; the result
                        // register is scoreboarded until the data returns.
                        if rd != 0 {
                            s.reg_ready_at[rd as usize] = completion;
                        }
                        s.outstanding.push(completion);
                    } else {
                        ready_at = completion;
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::Store { rs, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    let v = self.processors[p].stream(slot).reg(rs);
                    self.memory.store(addr, v);
                    let completion = self.mem_ready_at(addr);
                    if self.config.lookahead > 1 {
                        self.processors[p]
                            .stream_mut(slot)
                            .outstanding
                            .push(completion);
                    } else {
                        ready_at = completion;
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::LoadSync { rd, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    match self.memory.try_take(addr) {
                        Some(v) => {
                            self.processors[p].stream_mut(slot).set_reg(rd, v);
                            self.wake_on_empty(addr);
                        }
                        None => {
                            self.waiters
                                .entry(addr)
                                .or_default()
                                .on_full
                                .push_back((p, slot));
                            parked = true;
                        }
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::StoreSync { rs, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    let v = self.processors[p].stream(slot).reg(rs);
                    if self.memory.try_put_sync(addr, v) {
                        self.wake_on_full(addr);
                    } else {
                        self.waiters
                            .entry(addr)
                            .or_default()
                            .on_empty
                            .push_back((p, slot));
                        parked = true;
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::ReadFF { rd, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    match self.memory.try_read_ff(addr) {
                        Some(v) => self.processors[p].stream_mut(slot).set_reg(rd, v),
                        None => {
                            self.waiters
                                .entry(addr)
                                .or_default()
                                .on_full
                                .push_back((p, slot));
                            parked = true;
                        }
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::Put { rs, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    let v = self.processors[p].stream(slot).reg(rs);
                    self.memory.put(addr, v);
                    self.wake_on_full(addr);
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::FetchAdd {
                rd,
                base,
                offset,
                rs,
            } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    let delta = self.processors[p].stream(slot).reg(rs);
                    match self.memory.try_fetch_add(addr, delta) {
                        Some(old) => self.processors[p].stream_mut(slot).set_reg(rd, old),
                        None => {
                            self.waiters
                                .entry(addr)
                                .or_default()
                                .on_full
                                .push_back((p, slot));
                            parked = true;
                        }
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::Fork { entry, arg } => {
                let argv = self.processors[p].stream(slot).reg(arg);
                let n = self.processors.len();
                let mut placed = false;
                for i in 0..n {
                    let tp = (self.next_place + i) % n;
                    if self.processors[tp].has_free_slot() {
                        let at = self.cycle + self.config.fork_cost;
                        self.processors[tp].install(Stream::new(entry, argv), at);
                        self.arm(entry);
                        self.next_place = (tp + 1) % n;
                        self.forks += 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    self.pending_threads.push_back((entry, argv));
                    self.soft_spawns += 1;
                }
                ready_at = issue_done + self.config.fork_cost;
            }
            Instr::Halt => halted = true,
            // Everything else (ALU, float, move, branch, nonzero-divisor
            // Div) touches only the issuing stream's registers and pc —
            // the same helper phase A of the parallel tick runs
            // concurrently per processor.
            _ => next_pc = exec_local(self.processors[p].stream_mut(slot), instr, pc),
        }

        if halted {
            // `Halt` itself is never armed; no disarm needed.
            self.processors[p].remove(slot);
            self.start_pending_if_any(p);
            return;
        }
        if parked {
            // pc unchanged: the instruction re-executes on wake. Every
            // park is one full/empty retry; a park of a just-woken stream
            // additionally counts as a repark (it lost the word to
            // another consumer between wake and retry).
            self.sync_blocks += 1;
            let s = self.processors[p].stream_mut(slot);
            if s.was_woken {
                s.was_woken = false;
                self.reparks += 1;
            }
            self.processors[p].park(slot);
            // Parked streams cannot issue until woken; the wake re-arms.
            self.disarm(pc);
            return;
        }
        let s = self.processors[p].stream_mut(slot);
        s.was_woken = false;
        s.pc = next_pc;
        self.processors[p].make_ready_at(slot, ready_at);
        self.disarm(pc);
        self.arm(next_pc);
    }
}

/// Execute a purely stream-local instruction — one that reads and writes
/// only the issuing stream's registers — and return the next pc. These
/// are the ALU, floating-point, move, and branch instructions, plus `Div`
/// with a nonzero divisor; everything else (memory, full/empty bits,
/// thread creation, faults) has shared effects and must go through
/// [`Machine::execute`] so those effects land in deterministic order.
///
/// Callers must have excluded divide-by-zero first (it faults, which
/// appends to the machine-wide fault list).
fn exec_local(s: &mut Stream, instr: Instr, pc: usize) -> usize {
    let mut next_pc = pc + 1;
    match instr {
        Instr::Li { rd, imm } => s.set_reg(rd, imm as u64),
        Instr::Mov { rd, rs } => {
            let v = s.reg(rs);
            s.set_reg(rd, v);
        }
        Instr::Add { rd, ra, rb } => {
            let v = s.reg(ra).wrapping_add(s.reg(rb));
            s.set_reg(rd, v);
        }
        Instr::Sub { rd, ra, rb } => {
            let v = s.reg(ra).wrapping_sub(s.reg(rb));
            s.set_reg(rd, v);
        }
        Instr::Mul { rd, ra, rb } => {
            let v = s.reg(ra).wrapping_mul(s.reg(rb));
            s.set_reg(rd, v);
        }
        Instr::Div { rd, ra, rb } => {
            let (a, b) = (s.reg(ra) as i64, s.reg(rb) as i64);
            debug_assert!(b != 0, "divide-by-zero must fault in execute()");
            s.set_reg(rd, a.wrapping_div(b) as u64);
        }
        Instr::Addi { rd, ra, imm } => {
            let v = s.reg(ra).wrapping_add(imm as u64);
            s.set_reg(rd, v);
        }
        Instr::Slt { rd, ra, rb } => {
            let v = ((s.reg(ra) as i64) < (s.reg(rb) as i64)) as u64;
            s.set_reg(rd, v);
        }
        Instr::FAdd { rd, ra, rb } => {
            let v = s.reg_f(ra) + s.reg_f(rb);
            s.set_reg_f(rd, v);
        }
        Instr::FSub { rd, ra, rb } => {
            let v = s.reg_f(ra) - s.reg_f(rb);
            s.set_reg_f(rd, v);
        }
        Instr::FMul { rd, ra, rb } => {
            let v = s.reg_f(ra) * s.reg_f(rb);
            s.set_reg_f(rd, v);
        }
        Instr::FDiv { rd, ra, rb } => {
            let v = s.reg_f(ra) / s.reg_f(rb);
            s.set_reg_f(rd, v);
        }
        Instr::FMax { rd, ra, rb } => {
            let v = s.reg_f(ra).max(s.reg_f(rb));
            s.set_reg_f(rd, v);
        }
        Instr::FMin { rd, ra, rb } => {
            let v = s.reg_f(ra).min(s.reg_f(rb));
            s.set_reg_f(rd, v);
        }
        Instr::FLt { rd, ra, rb } => {
            let v = (s.reg_f(ra) < s.reg_f(rb)) as u64;
            s.set_reg(rd, v);
        }
        Instr::IToF { rd, rs } => {
            let v = s.reg(rs) as i64 as f64;
            s.set_reg_f(rd, v);
        }
        Instr::FToI { rd, rs } => {
            let v = s.reg_f(rs) as i64 as u64;
            s.set_reg(rd, v);
        }
        Instr::Jmp { target } => next_pc = target,
        Instr::Beq { ra, rb, target } => {
            if s.reg(ra) == s.reg(rb) {
                next_pc = target;
            }
        }
        Instr::Bne { ra, rb, target } => {
            if s.reg(ra) != s.reg(rb) {
                next_pc = target;
            }
        }
        Instr::Blt { ra, rb, target } => {
            if (s.reg(ra) as i64) < (s.reg(rb) as i64) {
                next_pc = target;
            }
        }
        Instr::Bge { ra, rb, target } => {
            if (s.reg(ra) as i64) >= (s.reg(rb) as i64) {
                next_pc = target;
            }
        }
        Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::LoadSync { .. }
        | Instr::StoreSync { .. }
        | Instr::ReadFF { .. }
        | Instr::Put { .. }
        | Instr::FetchAdd { .. }
        | Instr::Fork { .. }
        | Instr::Halt => unreachable!("exec_local called on a shared-effect instruction"),
    }
    next_pc
}

/// Coordinator→worker window publication for the parallel tick. Reads
/// and writes are ordered by the window barrier; the mutex makes the
/// handoff safe Rust.
struct WindowCtl {
    start: u64,
    end: u64,
    stop: bool,
}

/// The window-sequencing half of the two-phase tick, shared by the
/// multi-worker coordinator and the scaffolding-free single-worker path
/// of [`Machine::run_parallel`]: sizing each window from the armed
/// counters, merging phase-A outputs, committing proposals in
/// `(cycle, processor)` order, and the between-window fast-forward /
/// deadlock / completion bookkeeping.
#[derive(Default)]
struct WindowDriver {
    merged: Vec<(u64, usize, usize)>,
    last_issue: Option<u64>,
    completed: bool,
    deadlocked: bool,
    n_windows: u64,
    covered: u64,
}

impl WindowDriver {
    /// Size the next event window from the machine's armed counters, or
    /// `None` when the run is over (completion sets `self.completed`;
    /// hitting `max_cycles` leaves both flags clear — a timeout).
    ///
    /// Every stream issues at most once per window (window ≤
    /// `issue_latency`), and the instruction it issues is the one at its
    /// current pc — so unless some runnable stream sits at a fork or
    /// full/empty instruction, no commit can touch another stream sooner
    /// than `issue_latency` cycles out. While software-pending threads
    /// exist, any commit may fault, freeing a slot and spawning one at
    /// `c + soft_spawn_cost`.
    fn next_window(&mut self, m: &mut Machine, max_cycles: u64) -> Option<(u64, u64)> {
        if m.live_total() == 0 && m.pending_threads.is_empty() {
            self.completed = true;
            return None;
        }
        if m.cycle >= max_cycles {
            return None;
        }
        let mut window = m.config.issue_latency;
        if m.armed_forks > 0 {
            window = window.min(m.config.fork_cost);
        }
        if m.armed_syncs > 0 {
            window = window.min(m.config.wake_latency);
        }
        if !m.pending_threads.is_empty() {
            window = window.min(m.config.soft_spawn_cost);
        }
        let (start, end) = (m.cycle, (m.cycle + window).min(max_cycles));
        self.n_windows += 1;
        self.covered += end - start;
        self.merged.clear();
        self.last_issue = None;
        Some((start, end))
    }

    /// Fold one worker's phase-A output into the machine and the pending
    /// commit list, leaving `out` empty for the next window.
    fn absorb(&mut self, m: &mut Machine, out: &mut WindowOut) {
        self.merged.append(&mut out.proposals);
        m.mix.alu += out.local_issues;
        m.armed_forks += out.new_forks;
        m.armed_syncs += out.new_syncs;
        out.local_issues = 0;
        out.new_forks = 0;
        out.new_syncs = 0;
        self.last_issue = self.last_issue.max(out.last_issue.take());
    }

    /// Phase B plus the between-window bookkeeping, matching the
    /// sequential loop's cycle accounting exactly. Returns `false` when
    /// the run must stop (deadlock).
    fn commit(&mut self, m: &mut Machine, start: u64, end: u64, max_cycles: u64) -> bool {
        // Commit shared effects in (cycle, processor) order — the exact
        // order the sequential loop visits them in.
        self.merged.sort_unstable();
        for &(cycle, p, slot) in &self.merged {
            m.cycle = cycle;
            // `execute` maintains the armed counters itself, so the next
            // window sizing sees the post-commit pcs, wakes, and
            // installs.
            m.execute(p, slot);
        }
        if m.live_total() == 0 && m.pending_threads.is_empty() {
            // The final halt issued at `last_issue`; the sequential loop
            // advances one cycle past it before noticing completion.
            m.cycle = self.last_issue.expect("completion requires an issue") + 1;
            return true;
        }
        let resume = match self.last_issue {
            Some(t) => t + 1,
            None => start,
        };
        if resume >= max_cycles {
            m.cycle = max_cycles;
            return true;
        }
        if self.last_issue == Some(end - 1) {
            // Dense window: a stream issued at the window's final cycle,
            // so the machine is almost certainly still busy. Open the
            // next window at `resume` without scanning every processor's
            // event heap (the cost the sequential loop only pays on idle
            // cycles). If nothing turns out to be ready, that window
            // issues nothing and its commit falls through to the scan
            // below — the final state is identical either way.
            m.cycle = resume;
            return true;
        }
        // Event horizon: after `resume` no stream is ready before the
        // earliest pending event, so jump all processors straight to it
        // — or declare deadlock if only parked streams remain. Clamped
        // to the budget like the sequential fast-forward.
        let next = m
            .processors
            .iter_mut()
            .filter_map(|p| p.next_event(resume))
            .min();
        match next {
            Some(t) => {
                m.cycle = t.min(max_cycles);
                true
            }
            None => {
                self.deadlocked = true;
                m.cycle = resume;
                false
            }
        }
    }

    /// Env-gated window-size telemetry (`MTA_WINDOW_STATS=1`).
    fn report_stats(&self) {
        if std::env::var_os("MTA_WINDOW_STATS").is_some() {
            eprintln!(
                "windows {} covering {} cycles (avg {:.2})",
                self.n_windows,
                self.covered,
                self.covered as f64 / self.n_windows.max(1) as f64
            );
        }
    }
}

/// Per-worker phase-A output for one window of the parallel tick.
#[derive(Default)]
struct WindowOut {
    /// Proposed shared-effect issues as `(cycle, processor, slot)`;
    /// sorting the merged proposals therefore yields the sequential
    /// loop's (cycle, processor) commit order.
    proposals: Vec<(u64, usize, usize)>,
    /// Stream-local instructions issued this window (all ALU-class).
    local_issues: u64,
    /// Latest cycle at which any of this worker's processors issued.
    last_issue: Option<u64>,
    /// Streams that local execution advanced *onto* a `Fork` instruction
    /// this window. Local instructions are never armed themselves, so
    /// phase A only ever increments the machine's armed counters; the
    /// coordinator merges these deltas before sizing the next window.
    new_forks: usize,
    /// As [`WindowOut::new_forks`], for full/empty instructions.
    new_syncs: usize,
}

/// The machine, sharable with pool workers under the barrier protocol
/// documented in [`Machine::run_parallel`].
struct MachinePtr(*mut Machine);
// SAFETY: access is mediated by the window barrier — the coordinator
// touches the machine only while workers are parked, and workers touch
// only disjoint processors during phase A.
unsafe impl Send for MachinePtr {}
unsafe impl Sync for MachinePtr {}

impl MachinePtr {
    /// The raw machine pointer (closures capture the Sync wrapper, not
    /// the bare pointer field).
    fn get(&self) -> *mut Machine {
        self.0
    }
}

/// The machine's processor array, sharable under the same protocol.
struct ProcsPtr(*mut Processor);
// SAFETY: see `MachinePtr` — each worker dereferences only the disjoint
// elements of its own chunk, and only during phase A.
unsafe impl Send for ProcsPtr {}
unsafe impl Sync for ProcsPtr {}

impl ProcsPtr {
    /// Pointer to processor `p` (see the Sync note on [`MachinePtr`]).
    fn at(&self, p: usize) -> *mut Processor {
        // Chunk indices come from `chunk_range` over the processor count,
        // so `p` is always in bounds.
        unsafe { self.0.add(p) }
    }
}

/// Phase A of the parallel tick: advance one processor cycle-by-cycle
/// through `window`, fully executing stream-local instructions and
/// recording a proposal for every shared-effect issue. Touches only
/// `proc` (plus the read-only program/config), so disjoint processors
/// may run phase A concurrently.
fn phase_a(
    proc: &mut Processor,
    p: usize,
    program: &Program,
    config: &MtaConfig,
    window: std::ops::Range<u64>,
    out: &mut WindowOut,
) {
    let lookahead = config.lookahead as usize;
    for c in window {
        // Mirror the sequential issue loop: pop ready streams until one
        // issues; gate-blocked streams reschedule at their dependence
        // time without consuming the cycle's issue slot.
        while let Some(slot) = proc.next_to_issue(c) {
            let instr = program.code.get(proc.stream(slot).pc).copied();
            if config.lookahead > 1 {
                if let Some(instr) = instr {
                    let wait = gate_ready_at(proc.stream_mut(slot), instr, c, lookahead);
                    if wait > c {
                        proc.make_ready_at(slot, wait);
                        continue;
                    }
                }
            }
            match instr {
                Some(instr) if is_local_effect(instr, proc.stream(slot)) => {
                    let pc = proc.stream(slot).pc;
                    proc.record_issue(slot);
                    out.local_issues += 1;
                    let next_pc = exec_local(proc.stream_mut(slot), instr, pc);
                    let s = proc.stream_mut(slot);
                    s.was_woken = false;
                    s.pc = next_pc;
                    proc.make_ready_at(slot, c + config.issue_latency);
                    // Arm-counter delta: the stream may have advanced
                    // onto a fork or full/empty instruction (a local
                    // instruction is never armed, so no decrement).
                    match program.code.get(next_pc).copied() {
                        Some(Instr::Fork { .. }) => out.new_forks += 1,
                        Some(i) if is_full_empty(i) => out.new_syncs += 1,
                        _ => {}
                    }
                }
                // A shared-effect instruction, or the pc ran off the end
                // of the program (a fault): propose. The slot stays
                // popped from the queues until phase B commits it
                // through `Machine::execute` at exactly this cycle.
                _ => out.proposals.push((c, p, slot)),
            }
            // Max, not assignment: one `WindowOut` accumulates over every
            // processor in the worker's chunk, and a later processor's
            // last issue may fall earlier in the window.
            out.last_issue = out.last_issue.max(Some(c));
            break;
        }
    }
}

/// Lookahead-dependence gate: the earliest cycle at which the stream's
/// next instruction may issue given its scoreboard (`now` if it may issue
/// immediately). Purely stream-local, so it is shared between
/// [`Machine::try_issue`] and phase A of the parallel tick. Prunes
/// completed in-flight operations as a side effect.
fn gate_ready_at(s: &mut Stream, instr: Instr, now: u64, lookahead: usize) -> u64 {
    s.prune_outstanding(now);
    let mut wait = 0u64;
    for r in instr.src_regs().into_iter().flatten() {
        wait = wait.max(s.reg_ready_at[r as usize]);
    }
    if let Some(rd) = instr.dst_reg() {
        wait = wait.max(s.reg_ready_at[rd as usize]);
    }
    if instr.is_sync() {
        // Synchronized operations act as a memory fence.
        wait = wait.max(s.latest_outstanding(now));
    } else if instr.is_memory() && s.outstanding.len() >= lookahead {
        wait = wait.max(s.earliest_outstanding(now));
    }
    wait.max(now)
}

/// Whether `instr`, issued by stream `s`, is purely stream-local (see
/// [`exec_local`]). `Div` is local only while its divisor is nonzero — a
/// zero divisor faults, which is a shared effect.
/// Whether `instr` touches a word's full/empty bit when it commits — and
/// can therefore wake waiters `wake_latency` cycles later. Broader than
/// [`Instr::is_sync`]: `Put` never blocks but does wake.
fn is_full_empty(instr: Instr) -> bool {
    matches!(
        instr,
        Instr::LoadSync { .. }
            | Instr::StoreSync { .. }
            | Instr::ReadFF { .. }
            | Instr::Put { .. }
            | Instr::FetchAdd { .. }
    )
}

fn is_local_effect(instr: Instr, s: &Stream) -> bool {
    match instr {
        Instr::Div { rb, .. } => s.reg(rb) != 0,
        Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::LoadSync { .. }
        | Instr::StoreSync { .. }
        | Instr::ReadFF { .. }
        | Instr::Put { .. }
        | Instr::FetchAdd { .. }
        | Instr::Fork { .. }
        | Instr::Halt => false,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn run_program(f: impl FnOnce(&mut Assembler), procs: usize) -> (Machine, RunResult) {
        let mut a = Assembler::new();
        f(&mut a);
        let program = a.assemble().expect("assembly failed");
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 16,
                ..MtaConfig::tera(procs)
            },
            program,
        )
        .expect("bad machine");
        m.spawn(0, 0).unwrap();
        let r = m.run(50_000_000);
        (m, r)
    }

    #[test]
    fn empty_halt_program_completes() {
        let (_, r) = run_program(|a| a.halt(), 1);
        assert!(r.completed);
        assert!(!r.deadlocked);
        assert_eq!(r.stats.instructions(), 1);
    }

    #[test]
    fn arithmetic_and_store() {
        let (m, r) = run_program(
            |a| {
                a.li(1, 6);
                a.li(2, 7);
                a.mul(3, 1, 2);
                a.li(4, 100); // address
                a.store(3, 4, 0);
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        assert_eq!(m.memory().load(100), 42);
    }

    #[test]
    fn floating_point_ops() {
        let (m, r) = run_program(
            |a| {
                a.lif(1, 1.5);
                a.lif(2, 2.5);
                a.fadd(3, 1, 2); // 4.0
                a.fmul(4, 3, 3); // 16.0
                a.fdiv(5, 4, 2); // 6.4
                a.li(6, 10);
                a.store(5, 6, 0);
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        assert_eq!(m.memory().load_f64(10), 6.4);
    }

    #[test]
    fn single_stream_issues_once_per_21_cycles() {
        // 100 ALU instructions then halt: cycles ≈ 100 * 21.
        let (_, r) = run_program(
            |a| {
                a.li(1, 100);
                a.label("loop");
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        let instr = r.stats.instructions();
        assert_eq!(instr, 1 + 200 + 1, "li + 100*(addi,bne) + halt");
        // Utilization ≈ 1/21 — the paper's "roughly 5% processor
        // utilization" for single-threaded code.
        let u = r.utilization();
        assert!((u - 1.0 / 21.0).abs() < 0.005, "utilization {u}");
    }

    #[test]
    fn memory_latency_slows_a_single_stream_beyond_21_cycles() {
        // A pointer-chasing loop: every iteration is a load. Cycles per
        // instruction must be ≈ (21 + ~70)/2 > 21.
        let (_, r) = run_program(
            |a| {
                a.li(1, 200); // counter
                a.li(2, 500); // address
                a.label("loop");
                a.load(3, 2, 0);
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        let cpi = r.cycles as f64 / r.stats.instructions() as f64;
        assert!(
            cpi > 25.0,
            "memory ops must stretch CPI past the pipeline depth: {cpi}"
        );
    }

    #[test]
    fn many_streams_reach_high_utilization() {
        // 64 streams of pure ALU work fill the issue slot nearly fully.
        let (_, r) = run_program(
            |a| {
                // main: fork 63 workers, then do the same work itself.
                a.li(2, 63);
                a.label("spawn");
                a.fork_l("work", 0);
                a.addi(2, 2, -1);
                a.bne_l(2, 0, "spawn");
                a.label("work");
                a.li(1, 400);
                a.label("loop");
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        assert_eq!(r.stats.threads.forks, 63);
        let u = r.utilization();
        assert!(u > 0.85, "64 ALU streams should nearly saturate: {u}");
    }

    #[test]
    fn producer_consumer_synchronizes_through_full_empty_bits() {
        // Word 1000 starts EMPTY. Producer writes 5 values with StoreSync,
        // consumer takes them with LoadSync and accumulates into word 1001.
        let mut a = Assembler::new();
        // main: set up then fork producer and consumer... main IS producer.
        a.li(2, 1000); // channel address
        a.fork_l("consumer", 0);
        a.li(1, 1);
        a.label("produce");
        a.store_sync(1, 2, 0); // waits empty
        a.addi(1, 1, 1);
        a.li(3, 6);
        a.bne_l(1, 3, "produce");
        a.halt();
        a.label("consumer");
        a.li(2, 1000);
        a.li(4, 0); // sum
        a.li(5, 5); // count
        a.label("consume");
        a.load_sync(3, 2, 0); // waits full
        a.add(4, 4, 3);
        // Slow consumer: a delay loop, so the producer runs ahead and must
        // block on the full channel word.
        a.li(7, 40);
        a.label("delay");
        a.addi(7, 7, -1);
        a.bne_l(7, 0, "delay");
        a.addi(5, 5, -1);
        a.bne_l(5, 0, "consume");
        a.li(6, 1001);
        a.store(4, 6, 0);
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(1000);
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "run did not complete: {r:?}");
        assert_eq!(m.memory().load(1001), 1 + 2 + 3 + 4 + 5);
        assert!(
            r.stats.sync.blocked > 0,
            "the rendezvous must actually block"
        );
        assert!(r.stats.sync.wakes > 0);
    }

    #[test]
    fn fetch_add_allocates_unique_slots() {
        // 8 workers each fetch_add(1) on a counter at word 2000, writing
        // their ticket to 2100+ticket. All tickets 0..8 must be written.
        let mut a = Assembler::new();
        a.li(2, 8);
        a.label("spawn");
        a.fork_l("work", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        a.halt();
        a.label("work");
        a.li(3, 2000);
        a.li(4, 1);
        a.fetch_add(5, 3, 0, 4); // r5 = ticket
        a.li(6, 2100);
        a.add(6, 6, 5);
        a.store(4, 6, 0); // mark ticket claimed
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(2)
            },
            program,
        )
        .unwrap();
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed);
        for t in 0..8 {
            assert_eq!(m.memory().load(2100 + t), 1, "ticket {t} unclaimed");
        }
        assert_eq!(m.memory().load(2000), 8);
    }

    #[test]
    fn deadlock_is_detected() {
        // A single stream takes from an empty word that nobody fills.
        let mut a = Assembler::new();
        a.li(2, 100);
        a.load_sync(3, 2, 0);
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(100);
        m.spawn(0, 0).unwrap();
        let r = m.run(1_000_000);
        assert!(r.deadlocked);
        assert!(!r.completed);
    }

    #[test]
    fn out_of_bounds_access_faults_the_stream() {
        let (_, r) = run_program(
            |a| {
                a.li(2, 1 << 20); // beyond the 1<<16 test memory
                a.load(3, 2, 0);
                a.halt();
            },
            1,
        );
        assert!(!r.faults.is_empty());
        assert!(r.faults[0].contains("out of range"));
    }

    #[test]
    fn divide_by_zero_faults() {
        let (_, r) = run_program(
            |a| {
                a.li(1, 5);
                a.div(3, 1, 0);
                a.halt();
            },
            1,
        );
        assert!(!r.faults.is_empty());
        assert!(r.faults[0].contains("divide by zero"));
    }

    #[test]
    fn software_threads_queue_when_contexts_are_exhausted() {
        // 1 processor with only 4 stream contexts, forking 10 workers.
        let mut a = Assembler::new();
        a.li(2, 10);
        a.label("spawn");
        a.fork_l("work", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        a.halt();
        a.label("work");
        // Long-lived workers keep all contexts busy while main keeps
        // forking, so later forks must queue as software threads.
        a.li(6, 200);
        a.label("busy");
        a.addi(6, 6, -1);
        a.bne_l(6, 0, "busy");
        a.li(3, 3000);
        a.li(4, 1);
        a.fetch_add(5, 3, 0, 4);
        a.halt();
        let program = a.assemble().unwrap();
        let cfg = MtaConfig {
            streams_per_processor: 4,
            mem_words: 1 << 12,
            ..MtaConfig::tera(1)
        };
        let mut m = Machine::new(cfg, program).unwrap();
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "{r:?}");
        assert!(
            r.stats.threads.soft_spawns > 0,
            "some workers must have queued"
        );
        assert_eq!(
            m.memory().load(3000),
            10,
            "all 10 workers must eventually run"
        );
    }

    #[test]
    fn forks_spread_across_processors() {
        let mut a = Assembler::new();
        a.li(2, 16);
        a.label("spawn");
        a.fork_l("work", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        a.halt();
        a.label("work");
        a.li(1, 50);
        a.label("loop");
        a.addi(1, 1, -1);
        a.bne_l(1, 0, "loop");
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(2)
            },
            program,
        )
        .unwrap();
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed);
        assert!(r.stats.streams.peak_live_per_processor[0] > 1);
        assert!(
            r.stats.streams.peak_live_per_processor[1] > 1,
            "{:?}",
            r.stats.streams.peak_live_per_processor
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let mut a = Assembler::new();
            a.li(2, 12);
            a.label("spawn");
            a.fork_l("work", 2);
            a.addi(2, 2, -1);
            a.bne_l(2, 0, "spawn");
            a.halt();
            a.label("work");
            a.li(3, 4000);
            a.add(3, 3, 1);
            a.li(4, 7);
            a.store(4, 3, 0);
            a.li(5, 30);
            a.label("loop");
            a.addi(5, 5, -1);
            a.bne_l(5, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = || {
            let mut m = Machine::new(
                MtaConfig {
                    mem_words: 1 << 13,
                    ..MtaConfig::tera(2)
                },
                build(),
            )
            .unwrap();
            m.spawn(0, 0).unwrap();
            m.run(10_000_000)
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2, "simulation must be deterministic");
    }

    #[test]
    fn instruction_mix_is_recorded() {
        let (_, r) = run_program(
            |a| {
                a.li(2, 100); // alu
                a.li(3, 1); // alu
                a.store(3, 2, 0); // memory
                a.fetch_add(4, 2, 0, 3); // sync
                a.halt(); // thread
            },
            1,
        );
        assert_eq!(r.stats.mix.alu, 2);
        assert_eq!(r.stats.mix.memory, 1);
        assert_eq!(r.stats.mix.sync, 1);
        assert_eq!(r.stats.mix.thread, 1);
        assert!((r.stats.mix.mem_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn per_slot_issue_counts_sum_to_per_processor_totals() {
        let (_, r) = run_program(
            |a| {
                a.li(2, 6);
                a.label("spawn");
                a.fork_l("work", 0);
                a.addi(2, 2, -1);
                a.bne_l(2, 0, "spawn");
                a.label("work");
                a.li(1, 50);
                a.label("loop");
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        let s = &r.stats.streams;
        assert_eq!(s.issued_per_slot.len(), s.issued_per_processor.len());
        for (proc_total, slots) in s.issued_per_processor.iter().zip(&s.issued_per_slot) {
            assert_eq!(slots.iter().sum::<u64>(), *proc_total);
        }
        // 7 streams ran on one processor, so at least 7 slots issued.
        assert!(s.issued_per_slot[0].iter().filter(|&&n| n > 0).count() >= 7);
    }

    #[test]
    fn contended_fetch_add_counts_reparks() {
        // Many workers fetch_add on a word that main toggles empty/full
        // through a StoreSync chain is hard to arrange; instead park many
        // consumers on one empty word and publish it once: every woken
        // consumer races to take it, exactly one wins per publish, the
        // losers re-park — those are reparks.
        let mut a = Assembler::new();
        a.li(2, 4); // fork 4 consumers
        a.label("spawn");
        a.fork_l("consume", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        // main: delay so all consumers park, then publish 4 values.
        a.li(7, 200);
        a.label("delay");
        a.addi(7, 7, -1);
        a.bne_l(7, 0, "delay");
        a.li(1, 4);
        a.li(3, 1000);
        a.label("produce");
        a.store_sync(0, 3, 0); // waits empty, publishes 0
        a.addi(1, 1, -1);
        a.bne_l(1, 0, "produce");
        a.halt();
        a.label("consume");
        a.li(3, 1000);
        a.load_sync(4, 3, 0); // take one value
        a.li(5, 1001);
        a.li(6, 1);
        a.fetch_add(4, 5, 0, 6); // count completions
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(1000);
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "{r:?}");
        assert_eq!(m.memory().load(1001), 4, "all four consumers finish");
        let sync = r.stats.sync;
        assert!(sync.blocked > 0);
        assert!(
            sync.reparks > 0,
            "woken consumers racing for one word must repark: {sync:?}"
        );
        assert!(
            sync.reparks < sync.blocked,
            "a repark is a subset of blocks: {sync:?}"
        );
    }

    #[test]
    fn uncontended_sync_has_no_reparks() {
        // One producer, one consumer, one channel word: a woken stream
        // always finds the state it was woken for, so reparks stay 0 even
        // though blocking happens.
        let mut a = Assembler::new();
        a.li(2, 1000);
        a.fork_l("consumer", 0);
        a.li(1, 1);
        a.label("produce");
        a.store_sync(1, 2, 0);
        a.addi(1, 1, 1);
        a.li(3, 6);
        a.bne_l(1, 3, "produce");
        a.halt();
        a.label("consumer");
        a.li(2, 1000);
        a.li(5, 5);
        a.label("consume");
        a.load_sync(3, 2, 0);
        a.addi(5, 5, -1);
        a.bne_l(5, 0, "consume");
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(1000);
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "{r:?}");
        assert!(r.stats.sync.blocked > 0, "{:?}", r.stats.sync);
        assert_eq!(
            r.stats.sync.reparks, 0,
            "one producer + one consumer never race: {:?}",
            r.stats.sync
        );
    }

    #[test]
    fn lookahead_hides_latency_of_independent_loads() {
        // A single stream issuing back-to-back independent loads: with
        // lookahead 1 each load blocks (~91 cycles/instr on the load);
        // with lookahead 8 the stream keeps issuing at the pipeline rate.
        let build = || {
            let mut a = Assembler::new();
            a.li(1, 100); // counter
            a.li(2, 1000); // address
            a.label("loop");
            a.load(3, 2, 0);
            a.load(4, 2, 1);
            a.load(5, 2, 2);
            a.load(6, 2, 3);
            a.addi(2, 2, 4);
            a.addi(1, 1, -1);
            a.bne_l(1, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            m.spawn(0, 0).unwrap();
            let r = m.run(50_000_000);
            assert!(r.completed, "{r:?}");
            r.cycles as f64 / r.stats.instructions() as f64
        };
        let cpi_blocking = run(1);
        let cpi_lookahead = run(8);
        // Blocking: ~(4*70 + 3*21)/7 = 49 cycles/instr.
        assert!(cpi_blocking > 40.0, "blocking CPI {cpi_blocking}");
        assert!(
            cpi_lookahead < 25.0,
            "lookahead must hide independent-load latency: {cpi_lookahead}"
        );
    }

    #[test]
    fn dependent_load_chain_defeats_lookahead() {
        // Pointer chase: each load's address comes from the previous load,
        // so lookahead cannot overlap anything.
        let build = || {
            let mut a = Assembler::new();
            a.li(1, 150);
            a.li(2, 1000);
            a.label("loop");
            a.load(2, 2, 0); // r2 = mem[r2] (RAW chain)
            a.addi(1, 1, -1);
            a.bne_l(1, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            // Make the chase walk in place: mem[1000] = 1000.
            m.memory_mut().store(1000, 1000);
            m.spawn(0, 0).unwrap();
            let r = m.run(50_000_000);
            assert!(r.completed);
            r.cycles
        };
        let blocking = run(1);
        let lookahead = run(8);
        // Lookahead may hide the loop overhead (addi/bne) behind the
        // load, but never the load-to-load dependence itself: the
        // per-iteration time stays pinned at the ~70-cycle memory
        // latency instead of dropping to the ~21-cycle pipeline rate.
        let per_iter = lookahead as f64 / 150.0;
        assert!(
            (60.0..100.0).contains(&per_iter),
            "chased loads must stay latency-bound: {per_iter} cycles/iter"
        );
        assert!(blocking > lookahead, "hiding loop overhead is still a win");
    }

    #[test]
    fn lookahead_respects_the_outstanding_budget() {
        // 16 independent loads in a burst: lookahead 2 must be slower
        // than lookahead 8 (budget exhaustion stalls the stream).
        let build = || {
            let mut a = Assembler::new();
            a.li(2, 1000);
            for i in 0..16 {
                a.load((3 + (i % 8)) as u8, 2, i);
            }
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            m.spawn(0, 0).unwrap();
            let r = m.run(10_000_000);
            assert!(r.completed);
            r.cycles
        };
        let la2 = run(2);
        let la8 = run(8);
        assert!(
            la2 > la8,
            "narrow lookahead must stall more: la2={la2} la8={la8}"
        );
    }

    #[test]
    fn lookahead_preserves_results_and_sync_fencing() {
        // Store then LoadSync on the same channel under lookahead: the
        // sync op fences, so the rendezvous still works and the computed
        // values are identical to the blocking configuration.
        let build = || {
            let mut a = Assembler::new();
            a.li(1, 50);
            a.li(2, 2000); // output base
            a.li(4, 0); // accumulator
            a.label("loop");
            a.load(5, 2, -1000); // independent input load
            a.add(4, 4, 5);
            a.store(4, 2, 0);
            a.addi(2, 2, 1);
            a.addi(1, 1, -1);
            a.bne_l(1, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            m.memory_mut().store(1000, 3);
            m.spawn(0, 0).unwrap();
            let r = m.run(10_000_000);
            assert!(r.completed);
            let out: Vec<u64> = (0..50).map(|i| m.memory().load(2000 + i)).collect();
            out
        };
        assert_eq!(run(1), run(8), "lookahead must not change program results");
    }

    #[test]
    fn timeout_reports_incomplete() {
        let (_, r) = run_program(
            |a| {
                a.label("forever");
                a.jmp_l("forever");
            },
            1,
        );
        assert!(!r.completed);
        assert!(!r.deadlocked);
    }

    #[test]
    fn fast_forward_never_overshoots_the_cycle_budget() {
        // A single stream issues one load at cycle 0 and is then not ready
        // again until the memory latency has elapsed (~91 cycles for the
        // Tera parameters). With a budget of 5 cycles the fast-forward
        // used to jump straight to the next event and report ~91 cycles —
        // more than the budget — skewing seconds()/utilization() in sweep
        // tables. The reported cycle count must be clamped to the budget.
        let mut a = Assembler::new();
        a.li(1, 1000);
        a.load(2, 1, 0);
        a.load(3, 1, 0);
        a.halt();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 16,
                ..MtaConfig::tera(1)
            },
            a.assemble().unwrap(),
        )
        .unwrap();
        m.spawn(0, 0).unwrap();
        let max = 5;
        let r = m.run(max);
        assert!(!r.completed);
        assert_eq!(
            r.cycles, max,
            "timed-out run must report exactly its budget"
        );
    }

    #[test]
    fn seconds_rejects_degenerate_clock_rates() {
        let (_, r) = run_program(|a| a.halt(), 1);
        for bad in [0.0, -255.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = r.seconds(bad).expect_err("degenerate clock must error");
            assert!(err.to_string().contains("finite and positive"), "{err}");
        }
        let ok = r.seconds(255.0).unwrap();
        assert!(ok.is_finite() && ok >= 0.0);
        assert_eq!(ok, r.cycles as f64 / 255.0e6);
    }

    #[test]
    fn utilization_is_finite_for_degenerate_results() {
        // Zero cycles and zero processors both used to divide by zero.
        let empty = RunResult {
            cycles: 0,
            completed: false,
            deadlocked: false,
            faults: Vec::new(),
            stats: SimStats::default(),
        };
        assert_eq!(empty.utilization(), 0.0);
        let (_, real) = run_program(|a| a.halt(), 1);
        assert!(real.utilization().is_finite());
    }
}
