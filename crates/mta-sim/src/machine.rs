//! The whole machine: processors + interleaved memory + thread placement,
//! stepped cycle by cycle (with fast-forward over globally idle gaps).
//!
//! Timing model (defaults chosen to match the published MTA numbers and
//! the paper's observations):
//!
//! * every instruction occupies its stream for `issue_latency` = 21 cycles
//!   (the pipeline depth — a lone stream issues at most once per 21
//!   cycles ⇒ ≈5 % single-thread utilization, §5/§7 of the paper);
//! * memory operations additionally pay `mem_extra_latency` network/memory
//!   cycles plus bank queueing (64-way interleaved, `bank_service` cycles
//!   per access), ≈70 cycles uncontended — maskable only by other streams;
//! * synchronized operations on a word in the wrong full/empty state park
//!   the stream on the word's waiter list; the complementary transition
//!   re-readies it `wake_latency` cycles later (synchronization itself is
//!   a one-instruction, few-cycle affair — the MTA strength the paper
//!   highlights);
//! * `Fork` creates a hardware stream in `fork_cost` = 2 cycles while
//!   contexts are free, then falls back to queued software threads at
//!   `soft_spawn_cost` (the paper's 50–100 cycle software threads).

use crate::ir::{Instr, Program};
use crate::memory::Memory;
use crate::processor::{Processor, Stream};
use std::collections::{HashMap, VecDeque};

/// Machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MtaConfig {
    /// Number of processors (the SDSC machine had 2; up to 256).
    pub n_processors: usize,
    /// Hardware stream contexts per processor (128 on the MTA).
    pub streams_per_processor: usize,
    /// Clock rate, for converting cycles to seconds (255 MHz).
    pub clock_mhz: f64,
    /// Cycles between consecutive issues of one stream (pipeline depth).
    pub issue_latency: u64,
    /// Extra network + memory-pipeline cycles for a memory operation
    /// beyond bank service.
    pub mem_extra_latency: u64,
    /// Cycles a bank is busy per access.
    pub bank_service: u64,
    /// Number of interleaved memory banks.
    pub n_banks: usize,
    /// Extra cycles charged to a `Fork` that gets a hardware context.
    pub fork_cost: u64,
    /// Delay before a queued software thread starts on a freed context.
    pub soft_spawn_cost: u64,
    /// Delay from a full/empty transition to a parked stream re-issuing.
    pub wake_latency: u64,
    /// Memory size in words.
    pub mem_words: usize,
    /// Explicit-dependence lookahead: how many memory operations one
    /// stream may have outstanding while continuing to issue independent
    /// instructions. `1` disables lookahead (every instruction waits for
    /// the previous one — the behaviour the paper's measurements imply
    /// for the compiled benchmark code); the MTA hardware supported up
    /// to 8, encoded by the compiler in each instruction.
    pub lookahead: u64,
}

impl MtaConfig {
    /// The published Tera MTA parameters with `n_processors` processors.
    pub fn tera(n_processors: usize) -> Self {
        Self {
            n_processors,
            streams_per_processor: 128,
            clock_mhz: 255.0,
            issue_latency: 21,
            mem_extra_latency: 66,
            bank_service: 4,
            n_banks: 64,
            fork_cost: 2,
            soft_spawn_cost: 75,
            wake_latency: 3,
            mem_words: 1 << 22,
            lookahead: 1,
        }
    }

    /// Uncontended memory-operation latency (bank service + network).
    pub fn mem_latency(&self) -> u64 {
        self.bank_service + self.mem_extra_latency
    }
}

impl Default for MtaConfig {
    fn default() -> Self {
        Self::tera(1)
    }
}

/// Machine counters of one run, grouped by subsystem.
///
/// This is the simulator's analog of `sthreads::stats` on the host: the
/// paper's architecture-level quantities — issue-slot usage per stream
/// (§5's 1/21 single-stream ceiling), memory-bank queueing (§4's
/// interleaving), and full/empty retry traffic (§6's one-instruction
/// synchronization) — surfaced as structured data instead of a flat bag
/// of ad-hoc fields.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SimStats {
    /// Issue-slot accounting per processor and per hardware stream slot.
    pub streams: StreamStats,
    /// Thread-creation traffic (hardware forks vs queued software threads).
    pub threads: ThreadStats,
    /// Full/empty-bit synchronization traffic.
    pub sync: SyncStats,
    /// Memory-system counters, including the bank queue-depth histogram.
    pub memory: crate::memory::MemStats,
    /// Instructions issued by kind: ALU/branch, plain memory,
    /// synchronized memory, thread control (fork/halt).
    pub mix: InstrMix,
}

/// Where the machine's issue slots went.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StreamStats {
    /// Instructions issued, per processor.
    pub issued_per_processor: Vec<u64>,
    /// Instructions issued per hardware stream slot, per processor. A
    /// slot is reused by successive streams, so this is issue pressure on
    /// the *context*, the quantity §5's utilization argument is about.
    pub issued_per_slot: Vec<Vec<u64>>,
    /// High-water mark of live streams, per processor.
    pub peak_live_per_processor: Vec<usize>,
}

impl StreamStats {
    /// Total instructions issued across processors.
    pub fn instructions(&self) -> u64 {
        self.issued_per_processor.iter().sum()
    }

    /// Per-processor fraction of issue slots used over `cycles`.
    pub fn issue_slot_utilization(&self, cycles: u64) -> Vec<f64> {
        self.issued_per_processor
            .iter()
            .map(|&n| {
                if cycles == 0 {
                    0.0
                } else {
                    n as f64 / cycles as f64
                }
            })
            .collect()
    }
}

/// Thread-creation counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStats {
    /// Hardware forks that got a free stream context (few cycles each).
    pub forks: u64,
    /// Logical threads that had to queue for a context (software
    /// threads, `soft_spawn_cost` cycles — the paper's 50–100 cycles).
    pub soft_spawns: u64,
}

/// Full/empty-bit synchronization counters. A synchronized operation that
/// finds the wrong state parks with its pc unchanged and *retries* the
/// whole instruction when the complementary transition wakes it, so
/// `blocked` is exactly the full/empty retry count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Synchronized operations that found the wrong full/empty state and
    /// parked for retry.
    pub blocked: u64,
    /// Streams re-readied by full/empty transitions.
    pub wakes: u64,
    /// Woken streams whose retry found the wrong state *again* (lost the
    /// race to another consumer) and re-parked — contention, not just
    /// ordering.
    pub reparks: u64,
}

/// Issued-instruction mix.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InstrMix {
    /// ALU, float, move, and branch instructions.
    pub alu: u64,
    /// Plain loads and stores.
    pub memory: u64,
    /// Full/empty-synchronized operations (incl. fetch-add, put).
    pub sync: u64,
    /// Forks and halts.
    pub thread: u64,
}

impl InstrMix {
    /// Fraction of issued instructions that touch memory (plain + sync).
    pub fn mem_fraction(&self) -> f64 {
        let total = self.alu + self.memory + self.sync + self.thread;
        if total == 0 {
            0.0
        } else {
            (self.memory + self.sync) as f64 / total as f64
        }
    }
}

impl SimStats {
    /// Total instructions issued across processors.
    pub fn instructions(&self) -> u64 {
        self.streams.instructions()
    }
}

/// Outcome of [`Machine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles elapsed until the last stream halted (or the run aborted).
    pub cycles: u64,
    /// Whether every stream halted normally.
    pub completed: bool,
    /// Whether the run aborted because all live streams were parked on
    /// full/empty bits with nothing to wake them.
    pub deadlocked: bool,
    /// Streams killed by faults (address/divide errors), with messages.
    pub faults: Vec<String>,
    /// Machine counters for the run.
    pub stats: SimStats,
}

impl RunResult {
    /// Machine-wide processor utilization: issued instructions over issue
    /// slots (`cycles × processors`).
    pub fn utilization(&self) -> f64 {
        let n = self.stats.streams.issued_per_processor.len() as f64;
        if self.cycles == 0 || n == 0.0 {
            return 0.0;
        }
        self.stats.instructions() as f64 / (self.cycles as f64 * n)
    }

    /// Wall-clock seconds at `clock_mhz`.
    pub fn seconds(&self, clock_mhz: f64) -> f64 {
        self.cycles as f64 / (clock_mhz * 1e6)
    }
}

#[derive(Debug, Default)]
struct WaitLists {
    on_full: VecDeque<(usize, usize)>,
    on_empty: VecDeque<(usize, usize)>,
}

/// The simulated machine.
pub struct Machine {
    config: MtaConfig,
    program: Program,
    memory: Memory,
    processors: Vec<Processor>,
    waiters: HashMap<usize, WaitLists>,
    pending_threads: VecDeque<(usize, u64)>,
    next_place: usize,
    cycle: u64,
    faults: Vec<String>,
    forks: u64,
    soft_spawns: u64,
    sync_blocks: u64,
    wakes: u64,
    reparks: u64,
    mix: InstrMix,
}

impl Machine {
    /// Build a machine for `program` under `config`. The program is
    /// validated.
    pub fn new(config: MtaConfig, program: Program) -> Result<Self, String> {
        program.validate()?;
        let memory = Memory::new(config.mem_words, config.n_banks, config.bank_service);
        let processors = (0..config.n_processors)
            .map(|_| Processor::new(config.streams_per_processor))
            .collect();
        Ok(Self {
            config,
            program,
            memory,
            processors,
            waiters: HashMap::new(),
            pending_threads: VecDeque::new(),
            next_place: 0,
            cycle: 0,
            faults: Vec::new(),
            forks: 0,
            soft_spawns: 0,
            sync_blocks: 0,
            wakes: 0,
            reparks: 0,
            mix: InstrMix::default(),
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MtaConfig {
        &self.config
    }

    /// Read access to memory (for initializing inputs / reading results).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Write access to memory (for initializing inputs).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Start a stream at instruction `entry` with `r1 = arg`, placed
    /// round-robin. Returns an error if every context on every processor
    /// is busy (initial spawns should never queue).
    pub fn spawn(&mut self, entry: usize, arg: u64) -> Result<(), String> {
        if entry >= self.program.len() {
            return Err(format!("spawn entry {entry} out of range"));
        }
        let n = self.processors.len();
        for i in 0..n {
            let p = (self.next_place + i) % n;
            if self.processors[p].has_free_slot() {
                self.processors[p].install(Stream::new(entry, arg), self.cycle);
                self.next_place = (p + 1) % n;
                return Ok(());
            }
        }
        Err("no free stream context for initial spawn".to_string())
    }

    fn live_total(&self) -> usize {
        self.processors.iter().map(|p| p.live).sum()
    }

    /// Run until every stream halts, a deadlock is detected, or
    /// `max_cycles` elapses.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let mut completed = false;
        let mut deadlocked = false;
        while self.live_total() > 0 || !self.pending_threads.is_empty() {
            if self.cycle >= max_cycles {
                break;
            }
            let mut any = false;
            for p in 0..self.processors.len() {
                // Try ready streams until one actually issues; streams
                // blocked on lookahead dependences are rescheduled at
                // their dependence time and do not consume the issue slot.
                while let Some(slot) = self.processors[p].next_to_issue(self.cycle) {
                    if self.try_issue(p, slot) {
                        any = true;
                        break;
                    }
                }
            }
            if any {
                self.cycle += 1;
                continue;
            }
            // Nothing issued: fast-forward to the next event, or detect
            // deadlock (only parked streams remain).
            let now = self.cycle;
            let next = self
                .processors
                .iter_mut()
                .filter_map(|p| p.next_event(now))
                .min();
            match next {
                Some(t) => self.cycle = t.max(now + 1),
                None => {
                    deadlocked = true;
                    break;
                }
            }
        }
        if self.live_total() == 0 && self.pending_threads.is_empty() {
            completed = true;
        }
        RunResult {
            cycles: self.cycle,
            completed,
            deadlocked,
            faults: self.faults.clone(),
            stats: SimStats {
                streams: StreamStats {
                    issued_per_processor: self.processors.iter().map(|p| p.issued).collect(),
                    issued_per_slot: self
                        .processors
                        .iter()
                        .map(|p| p.issued_per_slot.clone())
                        .collect(),
                    peak_live_per_processor: self.processors.iter().map(|p| p.peak_live).collect(),
                },
                threads: ThreadStats {
                    forks: self.forks,
                    soft_spawns: self.soft_spawns,
                },
                sync: SyncStats {
                    blocked: self.sync_blocks,
                    wakes: self.wakes,
                    reparks: self.reparks,
                },
                memory: self.memory.stats(),
                mix: self.mix,
            },
        }
    }

    /// Kill the stream with a fault message.
    fn fault(&mut self, p: usize, slot: usize, msg: String) {
        self.faults.push(format!("proc {p} slot {slot}: {msg}"));
        self.processors[p].remove(slot);
        self.start_pending_if_any(p);
    }

    fn start_pending_if_any(&mut self, p: usize) {
        if let Some((entry, arg)) = self.pending_threads.pop_front() {
            let at = self.cycle + self.config.soft_spawn_cost;
            self.processors[p].install(Stream::new(entry, arg), at);
        }
    }

    fn wake_on_full(&mut self, addr: usize) {
        if let Some(w) = self.waiters.get_mut(&addr) {
            let at = self.cycle + self.config.wake_latency;
            while let Some((wp, wslot)) = w.on_full.pop_front() {
                self.processors[wp].stream_mut(wslot).was_woken = true;
                self.processors[wp].make_ready_at(wslot, at);
                self.wakes += 1;
            }
        }
    }

    fn wake_on_empty(&mut self, addr: usize) {
        if let Some(w) = self.waiters.get_mut(&addr) {
            let at = self.cycle + self.config.wake_latency;
            while let Some((wp, wslot)) = w.on_empty.pop_front() {
                self.processors[wp].stream_mut(wslot).was_woken = true;
                self.processors[wp].make_ready_at(wslot, at);
                self.wakes += 1;
            }
        }
    }

    /// Memory-op completion time: bank queueing + service + network.
    fn mem_ready_at(&mut self, addr: usize) -> u64 {
        let t = self.memory.schedule_access(addr, self.cycle);
        (t.done + self.config.mem_extra_latency).max(self.cycle + self.config.issue_latency)
    }

    /// Check lookahead dependences for the stream's next instruction and
    /// either execute it (true) or reschedule the stream at its
    /// dependence-ready time (false).
    fn try_issue(&mut self, p: usize, slot: usize) -> bool {
        if self.config.lookahead > 1 {
            let pc = self.processors[p].stream(slot).pc;
            if let Some(&instr) = self.program.code.get(pc) {
                let now = self.cycle;
                let lookahead = self.config.lookahead as usize;
                let s = self.processors[p].stream_mut(slot);
                s.prune_outstanding(now);
                let mut wait = 0u64;
                for r in instr.src_regs().into_iter().flatten() {
                    wait = wait.max(s.reg_ready_at[r as usize]);
                }
                if let Some(rd) = instr.dst_reg() {
                    wait = wait.max(s.reg_ready_at[rd as usize]);
                }
                if instr.is_sync() {
                    // Synchronized operations act as a memory fence.
                    wait = wait.max(s.latest_outstanding(now));
                } else if instr.is_memory() && s.outstanding.len() >= lookahead {
                    wait = wait.max(s.earliest_outstanding(now));
                }
                if wait > now {
                    self.processors[p].make_ready_at(slot, wait);
                    return false;
                }
            }
        }
        self.execute(p, slot);
        true
    }

    /// Execute one instruction of the stream in `(p, slot)` at the current
    /// cycle.
    fn execute(&mut self, p: usize, slot: usize) {
        let pc = self.processors[p].stream(slot).pc;
        let Some(&instr) = self.program.code.get(pc) else {
            self.fault(p, slot, format!("pc {pc} ran off the end of the program"));
            return;
        };
        self.processors[p].record_issue(slot);
        if instr.is_sync() {
            self.mix.sync += 1;
        } else if instr.is_memory() {
            self.mix.memory += 1;
        } else if matches!(instr, Instr::Fork { .. } | Instr::Halt) {
            self.mix.thread += 1;
        } else {
            self.mix.alu += 1;
        }

        // Address computation for memory ops, with bounds checking.
        let addr_of = |m: &Machine, base: crate::ir::Reg, offset: i64| -> Result<usize, String> {
            let a = m.processors[p].stream(slot).reg(base) as i64 + offset;
            if a < 0 {
                return Err(format!("negative address {a}"));
            }
            let a = a as usize;
            m.memory.check(a)?;
            Ok(a)
        };

        let issue_done = self.cycle + self.config.issue_latency;
        let mut ready_at = issue_done;
        let mut next_pc = pc + 1;
        let mut halted = false;
        let mut parked = false;

        macro_rules! alu {
            ($rd:expr, $val:expr) => {{
                let v = $val;
                self.processors[p].stream_mut(slot).set_reg($rd, v);
            }};
        }

        match instr {
            Instr::Li { rd, imm } => alu!(rd, imm as u64),
            Instr::Mov { rd, rs } => {
                let v = self.processors[p].stream(slot).reg(rs);
                alu!(rd, v)
            }
            Instr::Add { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg(ra).wrapping_add(s.reg(rb));
                alu!(rd, v)
            }
            Instr::Sub { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg(ra).wrapping_sub(s.reg(rb));
                alu!(rd, v)
            }
            Instr::Mul { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg(ra).wrapping_mul(s.reg(rb));
                alu!(rd, v)
            }
            Instr::Div { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let (a, b) = (s.reg(ra) as i64, s.reg(rb) as i64);
                if b == 0 {
                    self.fault(p, slot, "divide by zero".into());
                    return;
                }
                alu!(rd, a.wrapping_div(b) as u64)
            }
            Instr::Addi { rd, ra, imm } => {
                let v = self.processors[p]
                    .stream(slot)
                    .reg(ra)
                    .wrapping_add(imm as u64);
                alu!(rd, v)
            }
            Instr::Slt { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = ((s.reg(ra) as i64) < (s.reg(rb) as i64)) as u64;
                alu!(rd, v)
            }
            Instr::FAdd { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg_f(ra) + s.reg_f(rb);
                self.processors[p].stream_mut(slot).set_reg_f(rd, v);
            }
            Instr::FSub { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg_f(ra) - s.reg_f(rb);
                self.processors[p].stream_mut(slot).set_reg_f(rd, v);
            }
            Instr::FMul { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg_f(ra) * s.reg_f(rb);
                self.processors[p].stream_mut(slot).set_reg_f(rd, v);
            }
            Instr::FDiv { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg_f(ra) / s.reg_f(rb);
                self.processors[p].stream_mut(slot).set_reg_f(rd, v);
            }
            Instr::FMax { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg_f(ra).max(s.reg_f(rb));
                self.processors[p].stream_mut(slot).set_reg_f(rd, v);
            }
            Instr::FMin { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = s.reg_f(ra).min(s.reg_f(rb));
                self.processors[p].stream_mut(slot).set_reg_f(rd, v);
            }
            Instr::FLt { rd, ra, rb } => {
                let s = self.processors[p].stream(slot);
                let v = (s.reg_f(ra) < s.reg_f(rb)) as u64;
                alu!(rd, v)
            }
            Instr::IToF { rd, rs } => {
                let v = self.processors[p].stream(slot).reg(rs) as i64 as f64;
                self.processors[p].stream_mut(slot).set_reg_f(rd, v);
            }
            Instr::FToI { rd, rs } => {
                let v = self.processors[p].stream(slot).reg_f(rs) as i64 as u64;
                alu!(rd, v)
            }
            Instr::Jmp { target } => next_pc = target,
            Instr::Beq { ra, rb, target } => {
                let s = self.processors[p].stream(slot);
                if s.reg(ra) == s.reg(rb) {
                    next_pc = target;
                }
            }
            Instr::Bne { ra, rb, target } => {
                let s = self.processors[p].stream(slot);
                if s.reg(ra) != s.reg(rb) {
                    next_pc = target;
                }
            }
            Instr::Blt { ra, rb, target } => {
                let s = self.processors[p].stream(slot);
                if (s.reg(ra) as i64) < (s.reg(rb) as i64) {
                    next_pc = target;
                }
            }
            Instr::Bge { ra, rb, target } => {
                let s = self.processors[p].stream(slot);
                if (s.reg(ra) as i64) >= (s.reg(rb) as i64) {
                    next_pc = target;
                }
            }
            Instr::Load { rd, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    let v = self.memory.load(addr);
                    let completion = self.mem_ready_at(addr);
                    let s = self.processors[p].stream_mut(slot);
                    s.set_reg(rd, v);
                    if self.config.lookahead > 1 {
                        // Pipelined: the stream keeps issuing; the result
                        // register is scoreboarded until the data returns.
                        if rd != 0 {
                            s.reg_ready_at[rd as usize] = completion;
                        }
                        s.outstanding.push(completion);
                    } else {
                        ready_at = completion;
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::Store { rs, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    let v = self.processors[p].stream(slot).reg(rs);
                    self.memory.store(addr, v);
                    let completion = self.mem_ready_at(addr);
                    if self.config.lookahead > 1 {
                        self.processors[p]
                            .stream_mut(slot)
                            .outstanding
                            .push(completion);
                    } else {
                        ready_at = completion;
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::LoadSync { rd, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    match self.memory.try_take(addr) {
                        Some(v) => {
                            self.processors[p].stream_mut(slot).set_reg(rd, v);
                            self.wake_on_empty(addr);
                        }
                        None => {
                            self.waiters
                                .entry(addr)
                                .or_default()
                                .on_full
                                .push_back((p, slot));
                            parked = true;
                        }
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::StoreSync { rs, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    let v = self.processors[p].stream(slot).reg(rs);
                    if self.memory.try_put_sync(addr, v) {
                        self.wake_on_full(addr);
                    } else {
                        self.waiters
                            .entry(addr)
                            .or_default()
                            .on_empty
                            .push_back((p, slot));
                        parked = true;
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::ReadFF { rd, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    match self.memory.try_read_ff(addr) {
                        Some(v) => self.processors[p].stream_mut(slot).set_reg(rd, v),
                        None => {
                            self.waiters
                                .entry(addr)
                                .or_default()
                                .on_full
                                .push_back((p, slot));
                            parked = true;
                        }
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::Put { rs, base, offset } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    let v = self.processors[p].stream(slot).reg(rs);
                    self.memory.put(addr, v);
                    self.wake_on_full(addr);
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::FetchAdd {
                rd,
                base,
                offset,
                rs,
            } => match addr_of(self, base, offset) {
                Ok(addr) => {
                    ready_at = self.mem_ready_at(addr);
                    let delta = self.processors[p].stream(slot).reg(rs);
                    match self.memory.try_fetch_add(addr, delta) {
                        Some(old) => self.processors[p].stream_mut(slot).set_reg(rd, old),
                        None => {
                            self.waiters
                                .entry(addr)
                                .or_default()
                                .on_full
                                .push_back((p, slot));
                            parked = true;
                        }
                    }
                }
                Err(e) => {
                    self.fault(p, slot, e);
                    return;
                }
            },
            Instr::Fork { entry, arg } => {
                let argv = self.processors[p].stream(slot).reg(arg);
                let n = self.processors.len();
                let mut placed = false;
                for i in 0..n {
                    let tp = (self.next_place + i) % n;
                    if self.processors[tp].has_free_slot() {
                        let at = self.cycle + self.config.fork_cost;
                        self.processors[tp].install(Stream::new(entry, argv), at);
                        self.next_place = (tp + 1) % n;
                        self.forks += 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    self.pending_threads.push_back((entry, argv));
                    self.soft_spawns += 1;
                }
                ready_at = issue_done + self.config.fork_cost;
            }
            Instr::Halt => halted = true,
        }

        if halted {
            self.processors[p].remove(slot);
            self.start_pending_if_any(p);
            return;
        }
        if parked {
            // pc unchanged: the instruction re-executes on wake. Every
            // park is one full/empty retry; a park of a just-woken stream
            // additionally counts as a repark (it lost the word to
            // another consumer between wake and retry).
            self.sync_blocks += 1;
            let s = self.processors[p].stream_mut(slot);
            if s.was_woken {
                s.was_woken = false;
                self.reparks += 1;
            }
            self.processors[p].park(slot);
            return;
        }
        let s = self.processors[p].stream_mut(slot);
        s.was_woken = false;
        s.pc = next_pc;
        self.processors[p].make_ready_at(slot, ready_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn run_program(f: impl FnOnce(&mut Assembler), procs: usize) -> (Machine, RunResult) {
        let mut a = Assembler::new();
        f(&mut a);
        let program = a.assemble().expect("assembly failed");
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 16,
                ..MtaConfig::tera(procs)
            },
            program,
        )
        .expect("bad machine");
        m.spawn(0, 0).unwrap();
        let r = m.run(50_000_000);
        (m, r)
    }

    #[test]
    fn empty_halt_program_completes() {
        let (_, r) = run_program(|a| a.halt(), 1);
        assert!(r.completed);
        assert!(!r.deadlocked);
        assert_eq!(r.stats.instructions(), 1);
    }

    #[test]
    fn arithmetic_and_store() {
        let (m, r) = run_program(
            |a| {
                a.li(1, 6);
                a.li(2, 7);
                a.mul(3, 1, 2);
                a.li(4, 100); // address
                a.store(3, 4, 0);
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        assert_eq!(m.memory().load(100), 42);
    }

    #[test]
    fn floating_point_ops() {
        let (m, r) = run_program(
            |a| {
                a.lif(1, 1.5);
                a.lif(2, 2.5);
                a.fadd(3, 1, 2); // 4.0
                a.fmul(4, 3, 3); // 16.0
                a.fdiv(5, 4, 2); // 6.4
                a.li(6, 10);
                a.store(5, 6, 0);
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        assert_eq!(m.memory().load_f64(10), 6.4);
    }

    #[test]
    fn single_stream_issues_once_per_21_cycles() {
        // 100 ALU instructions then halt: cycles ≈ 100 * 21.
        let (_, r) = run_program(
            |a| {
                a.li(1, 100);
                a.label("loop");
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        let instr = r.stats.instructions();
        assert_eq!(instr, 1 + 200 + 1, "li + 100*(addi,bne) + halt");
        // Utilization ≈ 1/21 — the paper's "roughly 5% processor
        // utilization" for single-threaded code.
        let u = r.utilization();
        assert!((u - 1.0 / 21.0).abs() < 0.005, "utilization {u}");
    }

    #[test]
    fn memory_latency_slows_a_single_stream_beyond_21_cycles() {
        // A pointer-chasing loop: every iteration is a load. Cycles per
        // instruction must be ≈ (21 + ~70)/2 > 21.
        let (_, r) = run_program(
            |a| {
                a.li(1, 200); // counter
                a.li(2, 500); // address
                a.label("loop");
                a.load(3, 2, 0);
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        let cpi = r.cycles as f64 / r.stats.instructions() as f64;
        assert!(
            cpi > 25.0,
            "memory ops must stretch CPI past the pipeline depth: {cpi}"
        );
    }

    #[test]
    fn many_streams_reach_high_utilization() {
        // 64 streams of pure ALU work fill the issue slot nearly fully.
        let (_, r) = run_program(
            |a| {
                // main: fork 63 workers, then do the same work itself.
                a.li(2, 63);
                a.label("spawn");
                a.fork_l("work", 0);
                a.addi(2, 2, -1);
                a.bne_l(2, 0, "spawn");
                a.label("work");
                a.li(1, 400);
                a.label("loop");
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        assert_eq!(r.stats.threads.forks, 63);
        let u = r.utilization();
        assert!(u > 0.85, "64 ALU streams should nearly saturate: {u}");
    }

    #[test]
    fn producer_consumer_synchronizes_through_full_empty_bits() {
        // Word 1000 starts EMPTY. Producer writes 5 values with StoreSync,
        // consumer takes them with LoadSync and accumulates into word 1001.
        let mut a = Assembler::new();
        // main: set up then fork producer and consumer... main IS producer.
        a.li(2, 1000); // channel address
        a.fork_l("consumer", 0);
        a.li(1, 1);
        a.label("produce");
        a.store_sync(1, 2, 0); // waits empty
        a.addi(1, 1, 1);
        a.li(3, 6);
        a.bne_l(1, 3, "produce");
        a.halt();
        a.label("consumer");
        a.li(2, 1000);
        a.li(4, 0); // sum
        a.li(5, 5); // count
        a.label("consume");
        a.load_sync(3, 2, 0); // waits full
        a.add(4, 4, 3);
        // Slow consumer: a delay loop, so the producer runs ahead and must
        // block on the full channel word.
        a.li(7, 40);
        a.label("delay");
        a.addi(7, 7, -1);
        a.bne_l(7, 0, "delay");
        a.addi(5, 5, -1);
        a.bne_l(5, 0, "consume");
        a.li(6, 1001);
        a.store(4, 6, 0);
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(1000);
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "run did not complete: {r:?}");
        assert_eq!(m.memory().load(1001), 1 + 2 + 3 + 4 + 5);
        assert!(
            r.stats.sync.blocked > 0,
            "the rendezvous must actually block"
        );
        assert!(r.stats.sync.wakes > 0);
    }

    #[test]
    fn fetch_add_allocates_unique_slots() {
        // 8 workers each fetch_add(1) on a counter at word 2000, writing
        // their ticket to 2100+ticket. All tickets 0..8 must be written.
        let mut a = Assembler::new();
        a.li(2, 8);
        a.label("spawn");
        a.fork_l("work", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        a.halt();
        a.label("work");
        a.li(3, 2000);
        a.li(4, 1);
        a.fetch_add(5, 3, 0, 4); // r5 = ticket
        a.li(6, 2100);
        a.add(6, 6, 5);
        a.store(4, 6, 0); // mark ticket claimed
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(2)
            },
            program,
        )
        .unwrap();
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed);
        for t in 0..8 {
            assert_eq!(m.memory().load(2100 + t), 1, "ticket {t} unclaimed");
        }
        assert_eq!(m.memory().load(2000), 8);
    }

    #[test]
    fn deadlock_is_detected() {
        // A single stream takes from an empty word that nobody fills.
        let mut a = Assembler::new();
        a.li(2, 100);
        a.load_sync(3, 2, 0);
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(100);
        m.spawn(0, 0).unwrap();
        let r = m.run(1_000_000);
        assert!(r.deadlocked);
        assert!(!r.completed);
    }

    #[test]
    fn out_of_bounds_access_faults_the_stream() {
        let (_, r) = run_program(
            |a| {
                a.li(2, 1 << 20); // beyond the 1<<16 test memory
                a.load(3, 2, 0);
                a.halt();
            },
            1,
        );
        assert!(!r.faults.is_empty());
        assert!(r.faults[0].contains("out of range"));
    }

    #[test]
    fn divide_by_zero_faults() {
        let (_, r) = run_program(
            |a| {
                a.li(1, 5);
                a.div(3, 1, 0);
                a.halt();
            },
            1,
        );
        assert!(!r.faults.is_empty());
        assert!(r.faults[0].contains("divide by zero"));
    }

    #[test]
    fn software_threads_queue_when_contexts_are_exhausted() {
        // 1 processor with only 4 stream contexts, forking 10 workers.
        let mut a = Assembler::new();
        a.li(2, 10);
        a.label("spawn");
        a.fork_l("work", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        a.halt();
        a.label("work");
        // Long-lived workers keep all contexts busy while main keeps
        // forking, so later forks must queue as software threads.
        a.li(6, 200);
        a.label("busy");
        a.addi(6, 6, -1);
        a.bne_l(6, 0, "busy");
        a.li(3, 3000);
        a.li(4, 1);
        a.fetch_add(5, 3, 0, 4);
        a.halt();
        let program = a.assemble().unwrap();
        let cfg = MtaConfig {
            streams_per_processor: 4,
            mem_words: 1 << 12,
            ..MtaConfig::tera(1)
        };
        let mut m = Machine::new(cfg, program).unwrap();
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "{r:?}");
        assert!(
            r.stats.threads.soft_spawns > 0,
            "some workers must have queued"
        );
        assert_eq!(
            m.memory().load(3000),
            10,
            "all 10 workers must eventually run"
        );
    }

    #[test]
    fn forks_spread_across_processors() {
        let mut a = Assembler::new();
        a.li(2, 16);
        a.label("spawn");
        a.fork_l("work", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        a.halt();
        a.label("work");
        a.li(1, 50);
        a.label("loop");
        a.addi(1, 1, -1);
        a.bne_l(1, 0, "loop");
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(2)
            },
            program,
        )
        .unwrap();
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed);
        assert!(r.stats.streams.peak_live_per_processor[0] > 1);
        assert!(
            r.stats.streams.peak_live_per_processor[1] > 1,
            "{:?}",
            r.stats.streams.peak_live_per_processor
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let mut a = Assembler::new();
            a.li(2, 12);
            a.label("spawn");
            a.fork_l("work", 2);
            a.addi(2, 2, -1);
            a.bne_l(2, 0, "spawn");
            a.halt();
            a.label("work");
            a.li(3, 4000);
            a.add(3, 3, 1);
            a.li(4, 7);
            a.store(4, 3, 0);
            a.li(5, 30);
            a.label("loop");
            a.addi(5, 5, -1);
            a.bne_l(5, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = || {
            let mut m = Machine::new(
                MtaConfig {
                    mem_words: 1 << 13,
                    ..MtaConfig::tera(2)
                },
                build(),
            )
            .unwrap();
            m.spawn(0, 0).unwrap();
            m.run(10_000_000)
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2, "simulation must be deterministic");
    }

    #[test]
    fn instruction_mix_is_recorded() {
        let (_, r) = run_program(
            |a| {
                a.li(2, 100); // alu
                a.li(3, 1); // alu
                a.store(3, 2, 0); // memory
                a.fetch_add(4, 2, 0, 3); // sync
                a.halt(); // thread
            },
            1,
        );
        assert_eq!(r.stats.mix.alu, 2);
        assert_eq!(r.stats.mix.memory, 1);
        assert_eq!(r.stats.mix.sync, 1);
        assert_eq!(r.stats.mix.thread, 1);
        assert!((r.stats.mix.mem_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn per_slot_issue_counts_sum_to_per_processor_totals() {
        let (_, r) = run_program(
            |a| {
                a.li(2, 6);
                a.label("spawn");
                a.fork_l("work", 0);
                a.addi(2, 2, -1);
                a.bne_l(2, 0, "spawn");
                a.label("work");
                a.li(1, 50);
                a.label("loop");
                a.addi(1, 1, -1);
                a.bne_l(1, 0, "loop");
                a.halt();
            },
            1,
        );
        assert!(r.completed);
        let s = &r.stats.streams;
        assert_eq!(s.issued_per_slot.len(), s.issued_per_processor.len());
        for (proc_total, slots) in s.issued_per_processor.iter().zip(&s.issued_per_slot) {
            assert_eq!(slots.iter().sum::<u64>(), *proc_total);
        }
        // 7 streams ran on one processor, so at least 7 slots issued.
        assert!(s.issued_per_slot[0].iter().filter(|&&n| n > 0).count() >= 7);
    }

    #[test]
    fn contended_fetch_add_counts_reparks() {
        // Many workers fetch_add on a word that main toggles empty/full
        // through a StoreSync chain is hard to arrange; instead park many
        // consumers on one empty word and publish it once: every woken
        // consumer races to take it, exactly one wins per publish, the
        // losers re-park — those are reparks.
        let mut a = Assembler::new();
        a.li(2, 4); // fork 4 consumers
        a.label("spawn");
        a.fork_l("consume", 0);
        a.addi(2, 2, -1);
        a.bne_l(2, 0, "spawn");
        // main: delay so all consumers park, then publish 4 values.
        a.li(7, 200);
        a.label("delay");
        a.addi(7, 7, -1);
        a.bne_l(7, 0, "delay");
        a.li(1, 4);
        a.li(3, 1000);
        a.label("produce");
        a.store_sync(0, 3, 0); // waits empty, publishes 0
        a.addi(1, 1, -1);
        a.bne_l(1, 0, "produce");
        a.halt();
        a.label("consume");
        a.li(3, 1000);
        a.load_sync(4, 3, 0); // take one value
        a.li(5, 1001);
        a.li(6, 1);
        a.fetch_add(4, 5, 0, 6); // count completions
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(1000);
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "{r:?}");
        assert_eq!(m.memory().load(1001), 4, "all four consumers finish");
        let sync = r.stats.sync;
        assert!(sync.blocked > 0);
        assert!(
            sync.reparks > 0,
            "woken consumers racing for one word must repark: {sync:?}"
        );
        assert!(
            sync.reparks < sync.blocked,
            "a repark is a subset of blocks: {sync:?}"
        );
    }

    #[test]
    fn uncontended_sync_has_no_reparks() {
        // One producer, one consumer, one channel word: a woken stream
        // always finds the state it was woken for, so reparks stay 0 even
        // though blocking happens.
        let mut a = Assembler::new();
        a.li(2, 1000);
        a.fork_l("consumer", 0);
        a.li(1, 1);
        a.label("produce");
        a.store_sync(1, 2, 0);
        a.addi(1, 1, 1);
        a.li(3, 6);
        a.bne_l(1, 3, "produce");
        a.halt();
        a.label("consumer");
        a.li(2, 1000);
        a.li(5, 5);
        a.label("consume");
        a.load_sync(3, 2, 0);
        a.addi(5, 5, -1);
        a.bne_l(5, 0, "consume");
        a.halt();
        let program = a.assemble().unwrap();
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 12,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        m.memory_mut().set_empty(1000);
        m.spawn(0, 0).unwrap();
        let r = m.run(10_000_000);
        assert!(r.completed, "{r:?}");
        assert!(r.stats.sync.blocked > 0, "{:?}", r.stats.sync);
        assert_eq!(
            r.stats.sync.reparks, 0,
            "one producer + one consumer never race: {:?}",
            r.stats.sync
        );
    }

    #[test]
    fn lookahead_hides_latency_of_independent_loads() {
        // A single stream issuing back-to-back independent loads: with
        // lookahead 1 each load blocks (~91 cycles/instr on the load);
        // with lookahead 8 the stream keeps issuing at the pipeline rate.
        let build = || {
            let mut a = Assembler::new();
            a.li(1, 100); // counter
            a.li(2, 1000); // address
            a.label("loop");
            a.load(3, 2, 0);
            a.load(4, 2, 1);
            a.load(5, 2, 2);
            a.load(6, 2, 3);
            a.addi(2, 2, 4);
            a.addi(1, 1, -1);
            a.bne_l(1, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            m.spawn(0, 0).unwrap();
            let r = m.run(50_000_000);
            assert!(r.completed, "{r:?}");
            r.cycles as f64 / r.stats.instructions() as f64
        };
        let cpi_blocking = run(1);
        let cpi_lookahead = run(8);
        // Blocking: ~(4*70 + 3*21)/7 = 49 cycles/instr.
        assert!(cpi_blocking > 40.0, "blocking CPI {cpi_blocking}");
        assert!(
            cpi_lookahead < 25.0,
            "lookahead must hide independent-load latency: {cpi_lookahead}"
        );
    }

    #[test]
    fn dependent_load_chain_defeats_lookahead() {
        // Pointer chase: each load's address comes from the previous load,
        // so lookahead cannot overlap anything.
        let build = || {
            let mut a = Assembler::new();
            a.li(1, 150);
            a.li(2, 1000);
            a.label("loop");
            a.load(2, 2, 0); // r2 = mem[r2] (RAW chain)
            a.addi(1, 1, -1);
            a.bne_l(1, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            // Make the chase walk in place: mem[1000] = 1000.
            m.memory_mut().store(1000, 1000);
            m.spawn(0, 0).unwrap();
            let r = m.run(50_000_000);
            assert!(r.completed);
            r.cycles
        };
        let blocking = run(1);
        let lookahead = run(8);
        // Lookahead may hide the loop overhead (addi/bne) behind the
        // load, but never the load-to-load dependence itself: the
        // per-iteration time stays pinned at the ~70-cycle memory
        // latency instead of dropping to the ~21-cycle pipeline rate.
        let per_iter = lookahead as f64 / 150.0;
        assert!(
            (60.0..100.0).contains(&per_iter),
            "chased loads must stay latency-bound: {per_iter} cycles/iter"
        );
        assert!(blocking > lookahead, "hiding loop overhead is still a win");
    }

    #[test]
    fn lookahead_respects_the_outstanding_budget() {
        // 16 independent loads in a burst: lookahead 2 must be slower
        // than lookahead 8 (budget exhaustion stalls the stream).
        let build = || {
            let mut a = Assembler::new();
            a.li(2, 1000);
            for i in 0..16 {
                a.load((3 + (i % 8)) as u8, 2, i);
            }
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            m.spawn(0, 0).unwrap();
            let r = m.run(10_000_000);
            assert!(r.completed);
            r.cycles
        };
        let la2 = run(2);
        let la8 = run(8);
        assert!(
            la2 > la8,
            "narrow lookahead must stall more: la2={la2} la8={la8}"
        );
    }

    #[test]
    fn lookahead_preserves_results_and_sync_fencing() {
        // Store then LoadSync on the same channel under lookahead: the
        // sync op fences, so the rendezvous still works and the computed
        // values are identical to the blocking configuration.
        let build = || {
            let mut a = Assembler::new();
            a.li(1, 50);
            a.li(2, 2000); // output base
            a.li(4, 0); // accumulator
            a.label("loop");
            a.load(5, 2, -1000); // independent input load
            a.add(4, 4, 5);
            a.store(4, 2, 0);
            a.addi(2, 2, 1);
            a.addi(1, 1, -1);
            a.bne_l(1, 0, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let run = |lookahead: u64| {
            let cfg = MtaConfig {
                mem_words: 1 << 16,
                lookahead,
                ..MtaConfig::tera(1)
            };
            let mut m = Machine::new(cfg, build()).unwrap();
            m.memory_mut().store(1000, 3);
            m.spawn(0, 0).unwrap();
            let r = m.run(10_000_000);
            assert!(r.completed);
            let out: Vec<u64> = (0..50).map(|i| m.memory().load(2000 + i)).collect();
            out
        };
        assert_eq!(run(1), run(8), "lookahead must not change program results");
    }

    #[test]
    fn timeout_reports_incomplete() {
        let (_, r) = run_program(
            |a| {
                a.label("forever");
                a.jmp_l("forever");
            },
            1,
        );
        assert!(!r.completed);
        assert!(!r.deadlocked);
    }
}
