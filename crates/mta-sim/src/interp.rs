//! A timing-free reference interpreter for the simulator IR.
//!
//! [`run_reference`] executes a single-stream program with plain
//! sequential semantics — no pipeline, no banks, no stream scheduling.
//! Because the cycle-level [`crate::Machine`] must compute the *same
//! values* regardless of all its timing machinery, the reference
//! interpreter serves as a differential-testing oracle: property tests
//! generate random programs and require identical final register and
//! memory states (see `tests/reference.rs`).
//!
//! Only single-stream, non-blocking programs are supported: `Fork` is
//! rejected, and a synchronized operation that would block is reported as
//! [`RefOutcome::Blocked`] (the machine equivalent is a deadlock).

use crate::ir::{Instr, Program, NUM_REGS};

/// Result of a reference run.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // the register file is the payload of interest
pub enum RefOutcome {
    /// Program halted normally.
    Halted {
        /// Final register file.
        regs: [u64; NUM_REGS],
        /// Instructions executed.
        executed: u64,
    },
    /// A synchronized operation would block forever.
    Blocked {
        /// Index of the blocking instruction.
        at: usize,
    },
    /// A fault (address out of range, divide by zero).
    Fault {
        /// Description.
        msg: String,
    },
    /// The step budget ran out (probable infinite loop).
    OutOfFuel,
}

/// Execute `program` as a single stream against `memory` (data +
/// full/empty bits mutated in place), starting at instruction 0 with
/// `r1 = arg`. `fuel` bounds the number of executed instructions.
pub fn run_reference(
    program: &Program,
    memory: &mut crate::memory::Memory,
    arg: u64,
    fuel: u64,
) -> RefOutcome {
    let mut regs = [0u64; NUM_REGS];
    regs[1] = arg;
    let mut pc = 0usize;
    let mut executed = 0u64;

    let get = |regs: &[u64; NUM_REGS], r: u8| regs[r as usize];
    let getf = |regs: &[u64; NUM_REGS], r: u8| f64::from_bits(regs[r as usize]);

    macro_rules! set {
        ($rd:expr, $v:expr) => {
            if $rd != 0 {
                regs[$rd as usize] = $v;
            }
        };
    }
    macro_rules! setf {
        ($rd:expr, $v:expr) => {
            set!($rd, ($v).to_bits())
        };
    }

    while executed < fuel {
        let Some(&instr) = program.code.get(pc) else {
            return RefOutcome::Fault {
                msg: format!("pc {pc} out of range"),
            };
        };
        executed += 1;
        let mut next = pc + 1;
        let addr_of = |regs: &[u64; NUM_REGS], base: u8, off: i64| -> Result<usize, String> {
            let a = get(regs, base) as i64 + off;
            if a < 0 {
                return Err(format!("negative address {a}"));
            }
            let a = a as usize;
            memory_check(memory, a)?;
            Ok(a)
        };
        match instr {
            Instr::Li { rd, imm } => set!(rd, imm as u64),
            Instr::Mov { rd, rs } => set!(rd, get(&regs, rs)),
            Instr::Add { rd, ra, rb } => set!(rd, get(&regs, ra).wrapping_add(get(&regs, rb))),
            Instr::Sub { rd, ra, rb } => set!(rd, get(&regs, ra).wrapping_sub(get(&regs, rb))),
            Instr::Mul { rd, ra, rb } => set!(rd, get(&regs, ra).wrapping_mul(get(&regs, rb))),
            Instr::Div { rd, ra, rb } => {
                let b = get(&regs, rb) as i64;
                if b == 0 {
                    return RefOutcome::Fault {
                        msg: "divide by zero".into(),
                    };
                }
                set!(rd, (get(&regs, ra) as i64).wrapping_div(b) as u64)
            }
            Instr::Addi { rd, ra, imm } => set!(rd, get(&regs, ra).wrapping_add(imm as u64)),
            Instr::Slt { rd, ra, rb } => {
                set!(
                    rd,
                    ((get(&regs, ra) as i64) < (get(&regs, rb) as i64)) as u64
                )
            }
            Instr::FAdd { rd, ra, rb } => setf!(rd, getf(&regs, ra) + getf(&regs, rb)),
            Instr::FSub { rd, ra, rb } => setf!(rd, getf(&regs, ra) - getf(&regs, rb)),
            Instr::FMul { rd, ra, rb } => setf!(rd, getf(&regs, ra) * getf(&regs, rb)),
            Instr::FDiv { rd, ra, rb } => setf!(rd, getf(&regs, ra) / getf(&regs, rb)),
            Instr::FMax { rd, ra, rb } => setf!(rd, getf(&regs, ra).max(getf(&regs, rb))),
            Instr::FMin { rd, ra, rb } => setf!(rd, getf(&regs, ra).min(getf(&regs, rb))),
            Instr::FLt { rd, ra, rb } => set!(rd, (getf(&regs, ra) < getf(&regs, rb)) as u64),
            Instr::IToF { rd, rs } => setf!(rd, get(&regs, rs) as i64 as f64),
            Instr::FToI { rd, rs } => set!(rd, getf(&regs, rs) as i64 as u64),
            Instr::Jmp { target } => next = target,
            Instr::Beq { ra, rb, target } => {
                if get(&regs, ra) == get(&regs, rb) {
                    next = target;
                }
            }
            Instr::Bne { ra, rb, target } => {
                if get(&regs, ra) != get(&regs, rb) {
                    next = target;
                }
            }
            Instr::Blt { ra, rb, target } => {
                if (get(&regs, ra) as i64) < (get(&regs, rb) as i64) {
                    next = target;
                }
            }
            Instr::Bge { ra, rb, target } => {
                if (get(&regs, ra) as i64) >= (get(&regs, rb) as i64) {
                    next = target;
                }
            }
            Instr::Load { rd, base, offset } => match addr_of(&regs, base, offset) {
                Ok(a) => set!(rd, memory.load(a)),
                Err(msg) => return RefOutcome::Fault { msg },
            },
            Instr::Store { rs, base, offset } => match addr_of(&regs, base, offset) {
                Ok(a) => memory.store(a, get(&regs, rs)),
                Err(msg) => return RefOutcome::Fault { msg },
            },
            Instr::LoadSync { rd, base, offset } => match addr_of(&regs, base, offset) {
                Ok(a) => match memory.try_take(a) {
                    Some(v) => set!(rd, v),
                    None => return RefOutcome::Blocked { at: pc },
                },
                Err(msg) => return RefOutcome::Fault { msg },
            },
            Instr::StoreSync { rs, base, offset } => match addr_of(&regs, base, offset) {
                Ok(a) => {
                    if !memory.try_put_sync(a, get(&regs, rs)) {
                        return RefOutcome::Blocked { at: pc };
                    }
                }
                Err(msg) => return RefOutcome::Fault { msg },
            },
            Instr::ReadFF { rd, base, offset } => match addr_of(&regs, base, offset) {
                Ok(a) => match memory.try_read_ff(a) {
                    Some(v) => set!(rd, v),
                    None => return RefOutcome::Blocked { at: pc },
                },
                Err(msg) => return RefOutcome::Fault { msg },
            },
            Instr::Put { rs, base, offset } => match addr_of(&regs, base, offset) {
                Ok(a) => memory.put(a, get(&regs, rs)),
                Err(msg) => return RefOutcome::Fault { msg },
            },
            Instr::FetchAdd {
                rd,
                base,
                offset,
                rs,
            } => match addr_of(&regs, base, offset) {
                Ok(a) => match memory.try_fetch_add(a, get(&regs, rs)) {
                    Some(old) => set!(rd, old),
                    None => return RefOutcome::Blocked { at: pc },
                },
                Err(msg) => return RefOutcome::Fault { msg },
            },
            Instr::Fork { .. } => {
                return RefOutcome::Fault {
                    msg: "reference interpreter does not support Fork".into(),
                }
            }
            Instr::Halt => return RefOutcome::Halted { regs, executed },
        }
        pc = next;
    }
    RefOutcome::OutOfFuel
}

fn memory_check(memory: &crate::memory::Memory, a: usize) -> Result<(), String> {
    memory.check(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::memory::Memory;

    fn run(f: impl FnOnce(&mut Assembler)) -> (RefOutcome, Memory) {
        let mut a = Assembler::new();
        f(&mut a);
        let program = a.assemble().unwrap();
        let mut mem = Memory::new(1 << 12, 16, 1);
        let out = run_reference(&program, &mut mem, 7, 1_000_000);
        (out, mem)
    }

    #[test]
    fn arithmetic_and_memory_round_trip() {
        let (out, mem) = run(|a| {
            a.li(2, 21);
            a.add(3, 2, 2); // 42
            a.li(4, 100);
            a.store(3, 4, 0);
            a.load(5, 4, 0);
            a.halt();
        });
        match out {
            RefOutcome::Halted { regs, executed } => {
                assert_eq!(regs[5], 42);
                assert_eq!(regs[1], 7, "arg preserved");
                assert_eq!(executed, 6);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(mem.load(100), 42);
    }

    #[test]
    fn blocked_sync_is_reported() {
        let (out, _) = run(|a| {
            a.li(2, 50);
            a.load_sync(3, 2, 0); // word 50 is full => ok
            a.load_sync(4, 2, 0); // now empty => blocks
            a.halt();
        });
        assert_eq!(out, RefOutcome::Blocked { at: 2 });
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let (out, _) = run(|a| {
            a.label("x");
            a.jmp_l("x");
        });
        assert_eq!(out, RefOutcome::OutOfFuel);
    }

    #[test]
    fn faults_are_reported() {
        let (out, _) = run(|a| {
            a.li(2, 1 << 30);
            a.load(3, 2, 0);
            a.halt();
        });
        assert!(matches!(out, RefOutcome::Fault { .. }));
    }
}
