//! Ready-made IR kernels for tests, microbenchmarks, and the
//! reproduction of the paper's microarchitectural claims:
//!
//! * single-stream utilization ≈ 1/21 ≈ 5 % (§5: "a single thread on the
//!   Tera MTA can issue only one instruction every 21 cycles");
//! * tens of streams needed to saturate a processor for compute-heavy
//!   work, ≈80 for realistic memory-heavy mixes (§7: "80 concurrent
//!   threads are typically required to obtain full utilization");
//! * one-instruction synchronization (fetch-add self-scheduling,
//!   producer/consumer through full/empty words);
//! * bank conflicts under hot-bank strides in the 64-way interleave.
//!
//! Every kernel follows the same shape: a main stream forks `n_workers`
//! workers (each receiving its id in `r1`) and halts; workers do the
//! kernel work and halt. Completion is detected by the machine running
//! out of live streams.

use crate::asm::Assembler;
use crate::ir::{Program, Reg};
use crate::machine::{Machine, MtaConfig, RunResult};

/// Register carrying the worker id (set by `Fork`).
const ID: Reg = 1;
/// Scratch register used by load kernels.
const TMP: Reg = 8;

/// Emit the standard fan-out prologue: fork `n_workers` workers at
/// `worker` (ids `0..n_workers` in `r1`), then halt the main stream.
fn fanout(a: &mut Assembler, n_workers: i64, worker: &str) {
    a.li(2, 0); // next id
    a.li(3, n_workers);
    a.label("spawn");
    a.bge_l(2, 3, "spawned");
    a.fork_l(worker, 2);
    a.addi(2, 2, 1);
    a.jmp_l("spawn");
    a.label("spawned");
    a.halt();
}

/// A pure-ALU kernel: `n_workers` streams each run `iters` iterations of
/// integer work (2 instructions per iteration).
pub fn alu_kernel(n_workers: usize, iters: i64) -> Program {
    let mut a = Assembler::new();
    fanout(&mut a, n_workers as i64, "work");
    a.label("work");
    a.li(4, iters);
    a.label("loop");
    a.addi(4, 4, -1);
    a.bne_l(4, 0, "loop");
    a.halt();
    a.assemble().expect("alu_kernel must assemble")
}

/// A strided-load kernel: worker `w` performs `iters` loads at addresses
/// `base + (w*iters + i) * stride`. With `stride == 1` traffic spreads
/// over all banks; with `stride == n_banks` every access hits one bank
/// (hot-banking).
pub fn mem_kernel(n_workers: usize, iters: i64, stride: i64, base: i64) -> Program {
    // 6-way unrolled so loads dominate the instruction stream (6 loads per
    // 14 instructions) — enough demand to expose hot-bank serialization.
    const UNROLL: i64 = 6;
    let mut a = Assembler::new();
    fanout(&mut a, n_workers as i64, "work");
    a.label("work");
    a.li(4, iters);
    a.li(5, iters * UNROLL * stride);
    a.mul(5, ID, 5);
    a.addi(5, 5, base);
    a.li(6, stride);
    a.label("loop");
    for _ in 0..UNROLL {
        a.load(TMP, 5, 0);
        a.add(5, 5, 6);
    }
    a.addi(4, 4, -1);
    a.bne_l(4, 0, "loop");
    a.halt();
    a.assemble().expect("mem_kernel must assemble")
}

/// A mixed compute/memory kernel: each iteration does `alu_per_iter`
/// integer instructions and one load, giving a memory fraction of
/// `1 / (alu_per_iter + 1)`. This is the knob for the
/// utilization-vs-streams experiments.
pub fn mixed_kernel(n_workers: usize, iters: i64, alu_per_iter: i64, base: i64) -> Program {
    assert!(alu_per_iter >= 1);
    let mut a = Assembler::new();
    fanout(&mut a, n_workers as i64, "work");
    a.label("work");
    a.li(4, iters);
    a.li(5, 0);
    a.mov(6, ID);
    a.addi(6, 6, base);
    a.label("loop");
    for _ in 0..(alu_per_iter - 1) {
        a.addi(5, 5, 1);
    }
    a.load(TMP, 6, 0);
    a.addi(4, 4, -1);
    a.bne_l(4, 0, "loop");
    a.halt();
    a.assemble().expect("mixed_kernel must assemble")
}

/// Memory layout of [`vector_add_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct VectorAddLayout {
    /// First word of operand `a`.
    pub a_base: usize,
    /// First word of operand `b`.
    pub b_base: usize,
    /// First word of the result `c`.
    pub c_base: usize,
    /// Vector length.
    pub n: usize,
}

/// `c[i] = a[i] + b[i]` (f64), statically chunked over `n_workers` streams
/// by the paper's `(chunk*n)/num_chunks` blocking.
pub fn vector_add_kernel(n: usize, n_workers: usize) -> (Program, VectorAddLayout) {
    let layout = VectorAddLayout {
        a_base: 1024,
        b_base: 1024 + n,
        c_base: 1024 + 2 * n,
        n,
    };
    let mut a = Assembler::new();
    fanout(&mut a, n_workers as i64, "work");
    a.label("work");
    a.li(4, n as i64);
    a.li(5, n_workers as i64);
    a.mul(6, ID, 4);
    a.div(6, 6, 5); // r6 = first = id*n/w
    a.mov(7, ID);
    a.addi(7, 7, 1);
    a.mul(7, 7, 4);
    a.div(7, 7, 5); // r7 = end = (id+1)*n/w
    a.label("loop");
    a.bge_l(6, 7, "done");
    a.li(9, layout.a_base as i64);
    a.add(9, 9, 6);
    a.load(10, 9, 0); // a[i]
    a.li(11, layout.b_base as i64);
    a.add(11, 11, 6);
    a.load(12, 11, 0); // b[i]
    a.fadd(13, 10, 12);
    a.li(14, layout.c_base as i64);
    a.add(14, 14, 6);
    a.store(13, 14, 0); // c[i]
    a.addi(6, 6, 1);
    a.jmp_l("loop");
    a.label("done");
    a.halt();
    (
        a.assemble().expect("vector_add_kernel must assemble"),
        layout,
    )
}

/// Memory layout of [`reduce_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct ReduceLayout {
    /// First word of the input vector (u64 integers).
    pub data_base: usize,
    /// The self-scheduling claim counter (starts 0, full).
    pub claim_addr: usize,
    /// The shared accumulator (starts 0, full; updated with fetch-add).
    pub sum_addr: usize,
    /// Input length.
    pub n: usize,
}

/// Self-scheduled integer sum: workers claim indices with `fetch_add` on a
/// shared counter and add each element into a shared accumulator with
/// another `fetch_add` — the MTA idiom the fine-grained Threat Analysis
/// variant uses for `num_intervals`.
pub fn reduce_kernel(n: usize, n_workers: usize) -> (Program, ReduceLayout) {
    let layout = ReduceLayout {
        data_base: 4096,
        claim_addr: 512,
        sum_addr: 513,
        n,
    };
    let mut a = Assembler::new();
    fanout(&mut a, n_workers as i64, "work");
    a.label("work");
    a.li(4, layout.claim_addr as i64);
    a.li(5, layout.sum_addr as i64);
    a.li(6, n as i64);
    a.li(7, 1);
    a.label("claim");
    a.fetch_add(9, 4, 0, 7); // r9 = my index
    a.bge_l(9, 6, "done"); // out of work
    a.li(10, layout.data_base as i64);
    a.add(10, 10, 9);
    a.load(11, 10, 0); // data[i]
    a.fetch_add(12, 5, 0, 11); // sum += data[i]
    a.jmp_l("claim");
    a.label("done");
    a.halt();
    (a.assemble().expect("reduce_kernel must assemble"), layout)
}

/// Memory layout of [`pipeline_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineLayout {
    /// First channel word (one per stage boundary).
    pub chan_base: usize,
    /// Where the sink stores the sum of received values.
    pub sink_addr: usize,
    /// Number of pipeline stages.
    pub stages: usize,
    /// Values fed through the pipeline.
    pub items: i64,
}

/// A producer/consumer chain of `stages` streams connected by full/empty
/// channel words: stage `k` takes from channel `k`, adds 1, and puts into
/// channel `k+1`; the main stream feeds `items` values (`0..items`) into
/// channel 0 and a sink stream drains channel `stages`, storing the sum
/// of received values at `sink_addr`. All channel words must be set empty
/// before the run.
pub fn pipeline_kernel(stages: usize, items: i64) -> (Program, PipelineLayout) {
    assert!(stages >= 1 && items >= 1);
    let layout = PipelineLayout {
        chan_base: 256,
        sink_addr: 255,
        stages,
        items,
    };
    let mut a = Assembler::new();
    a.li(2, 0);
    a.li(3, stages as i64);
    a.label("spawn");
    a.bge_l(2, 3, "spawned");
    a.fork_l("stage", 2);
    a.addi(2, 2, 1);
    a.jmp_l("spawn");
    a.label("spawned");
    a.fork_l("sink", 0);
    // feed: store_sync items into channel 0.
    a.li(4, layout.chan_base as i64);
    a.li(5, 0);
    a.li(6, items);
    a.label("feed");
    a.bge_l(5, 6, "fed");
    a.store_sync(5, 4, 0);
    a.addi(5, 5, 1);
    a.jmp_l("feed");
    a.label("fed");
    a.halt();
    // stage worker: in = chan_base + id, out = in + 1
    a.label("stage");
    a.li(4, layout.chan_base as i64);
    a.add(4, 4, ID);
    a.mov(5, 4);
    a.addi(5, 5, 1);
    a.li(6, items);
    a.label("stage_loop");
    a.load_sync(7, 4, 0);
    a.addi(7, 7, 1);
    a.store_sync(7, 5, 0);
    a.addi(6, 6, -1);
    a.bne_l(6, 0, "stage_loop");
    a.halt();
    // sink: take from chan_base + stages, accumulate, store the sum.
    a.label("sink");
    a.li(4, (layout.chan_base + stages) as i64);
    a.li(5, 0);
    a.li(6, items);
    a.label("sink_loop");
    a.load_sync(7, 4, 0);
    a.add(5, 5, 7);
    a.addi(6, 6, -1);
    a.bne_l(6, 0, "sink_loop");
    a.li(9, layout.sink_addr as i64);
    a.store(5, 9, 0);
    a.halt();
    (a.assemble().expect("pipeline_kernel must assemble"), layout)
}

/// Memory layout of [`chunked_scan_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct ChunkedScanLayout {
    /// Per-pair window table: `2` words per pair (`start`, `end`).
    pub windows_base: usize,
    /// Shared interval counter (fetch-add target).
    pub count_addr: usize,
    /// Number of (threat, weapon) pairs.
    pub n_pairs: usize,
    /// Time steps scanned per pair.
    pub steps: i64,
}

/// A miniature chunked Threat Analysis in simulator IR — the Table 6
/// experiment at cycle level. `n_pairs` pairs are split over `n_chunks`
/// worker streams with the paper's blocking expression; each pair scans
/// `steps` time steps (one window-table load plus compare/advance per
/// step, the benchmark's ~25% memory mix) and counts pairs whose window
/// is non-empty via fetch-add on a shared counter.
///
/// Sweeping `n_chunks` on a fixed machine reproduces, *in the simulator*,
/// the saturation shape of the paper's Table 6 that the analytic model
/// predicts with `min(1, s/L)`.
pub fn chunked_scan_kernel(
    n_pairs: usize,
    steps: i64,
    n_chunks: usize,
) -> (Program, ChunkedScanLayout) {
    let layout = ChunkedScanLayout {
        windows_base: 8192,
        count_addr: 600,
        n_pairs,
        steps,
    };
    let mut a = Assembler::new();
    fanout(&mut a, n_chunks as i64, "work");
    a.label("work");
    // r4 = first pair = id*n/chunks ; r5 = end pair = (id+1)*n/chunks
    a.li(2, n_pairs as i64);
    a.li(3, n_chunks as i64);
    a.mul(4, ID, 2);
    a.div(4, 4, 3);
    a.mov(5, ID);
    a.addi(5, 5, 1);
    a.mul(5, 5, 2);
    a.div(5, 5, 3);
    a.label("pair");
    a.bge_l(4, 5, "done");
    // r6 = &windows[pair]
    a.li(6, layout.windows_base as i64);
    a.add(6, 6, 4);
    a.add(6, 6, 4); // base + 2*pair
    a.li(7, steps); // step counter
    a.li(9, 0); // feasible-step count for this pair
    a.label("step");
    a.load(10, 6, 0); // window start
    a.load(11, 6, 1); // window end
    a.slt(12, 10, 11); // start < end ?
    a.add(9, 9, 12);
    a.addi(7, 7, -1);
    a.bne_l(7, 0, "step");
    // One fetch-add per pair with a non-empty window.
    a.beq_l(9, 0, "next");
    a.li(13, layout.count_addr as i64);
    a.li(14, 1);
    a.fetch_add(15, 13, 0, 14);
    a.label("next");
    a.addi(4, 4, 1);
    a.jmp_l("pair");
    a.label("done");
    a.halt();
    (
        a.assemble().expect("chunked_scan_kernel must assemble"),
        layout,
    )
}

/// Memory layout of [`ray_sweep_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct RaySweepLayout {
    /// Input slopes, row-major `[ray][step]`, f64 bit patterns.
    pub slopes_base: usize,
    /// Output running maxima, same shape.
    pub out_base: usize,
    /// Self-scheduling ray claim counter.
    pub claim_addr: usize,
    /// Number of rays.
    pub n_rays: usize,
    /// Steps per ray.
    pub len: usize,
}

/// A miniature fine-grained Terrain Masking in simulator IR: the masking
/// recurrence decomposed into independent *rays*. Each ray is a serial
/// max-propagation chain (`out[k] = max(out[k-1], slope[k])` — the
/// blocking-slope recurrence); rays are independent and self-scheduled
/// over `n_workers` streams with a one-instruction fetch-add claim.
///
/// The available parallelism equals the ray count, which is what makes
/// this the Table 11 experiment at cycle level: with few rays a second
/// processor buys almost nothing; with hundreds it scales.
pub fn ray_sweep_kernel(n_rays: usize, len: usize, n_workers: usize) -> (Program, RaySweepLayout) {
    let layout = RaySweepLayout {
        slopes_base: 16384,
        out_base: 16384 + n_rays * len,
        claim_addr: 700,
        n_rays,
        len,
    };
    let mut a = Assembler::new();
    fanout(&mut a, n_workers as i64, "work");
    a.label("work");
    a.li(2, layout.claim_addr as i64);
    a.li(3, n_rays as i64);
    a.li(4, 1);
    a.label("claim");
    a.fetch_add(5, 2, 0, 4); // r5 = ray index
    a.bge_l(5, 3, "done");
    // r6 = &slopes[ray][0], r7 = &out[ray][0]
    a.li(9, len as i64);
    a.mul(6, 5, 9);
    a.addi(6, 6, layout.slopes_base as i64);
    a.mul(7, 5, 9);
    a.addi(7, 7, layout.out_base as i64);
    // r10 = running max (start at -inf), r11 = step counter
    a.lif(10, f64::NEG_INFINITY);
    a.li(11, len as i64);
    a.label("step");
    a.load(12, 6, 0); // slope[k]
    a.fmax(10, 10, 12); // running max
    a.store(10, 7, 0); // out[k]
    a.addi(6, 6, 1);
    a.addi(7, 7, 1);
    a.addi(11, 11, -1);
    a.bne_l(11, 0, "step");
    a.jmp_l("claim");
    a.label("done");
    a.halt();
    (
        a.assemble().expect("ray_sweep_kernel must assemble"),
        layout,
    )
}

/// Run `program` on a fresh machine, marking `empties` empty first.
/// Panics on deadlock/fault/timeout — kernels are supposed to finish.
pub fn run_kernel(cfg: MtaConfig, program: Program, empties: &[usize]) -> (Machine, RunResult) {
    let mut m = Machine::new(cfg, program).expect("kernel must validate");
    for &a in empties {
        m.memory_mut().set_empty(a);
    }
    m.spawn(0, 0).expect("spawn main");
    let r = m.run(2_000_000_000);
    assert!(
        r.completed && r.faults.is_empty(),
        "kernel failed: completed={} deadlocked={} faults={:?}",
        r.completed,
        r.deadlocked,
        r.faults
    );
    (m, r)
}

/// Measure machine utilization for a mixed workload of `n_workers`
/// streams (see [`mixed_kernel`]).
pub fn measure_utilization(cfg: MtaConfig, n_workers: usize, iters: i64, alu_per_iter: i64) -> f64 {
    let program = mixed_kernel(n_workers, iters, alu_per_iter, 100_000);
    let (_, r) = run_kernel(cfg, program, &[]);
    r.utilization()
}

/// [`measure_utilization`] for each stream count in `streams`, simulated
/// across `n_threads` host workers.
///
/// Each sweep point is an independent simulation on its own fresh
/// [`Machine`], so the points run concurrently with dynamic
/// self-scheduling (cycle counts grow with the stream count, making the
/// work irregular — the paper's own argument for self-scheduled loops)
/// on sthreads' persistent worker pool, so repeated sweeps reuse parked
/// workers instead of spawning threads.
/// Results are in `streams` order and identical to calling
/// [`measure_utilization`] sequentially: the simulator is deterministic
/// and shares no state between points.
pub fn measure_utilization_sweep(
    cfg: &MtaConfig,
    streams: &[usize],
    iters: i64,
    alu_per_iter: i64,
    n_threads: usize,
) -> Vec<f64> {
    sthreads::par_map(streams.len(), n_threads, sthreads::Schedule::Dynamic, |i| {
        measure_utilization(cfg.clone(), streams[i], iters, alu_per_iter)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg1() -> MtaConfig {
        MtaConfig {
            mem_words: 1 << 20,
            ..MtaConfig::tera(1)
        }
    }

    #[test]
    fn vector_add_computes_the_sum() {
        let n = 200;
        let (program, layout) = vector_add_kernel(n, 8);
        let mut m = Machine::new(cfg1(), program).unwrap();
        for i in 0..n {
            m.memory_mut().store_f64(layout.a_base + i, i as f64);
            m.memory_mut().store_f64(layout.b_base + i, 2.0 * i as f64);
        }
        m.spawn(0, 0).unwrap();
        let r = m.run(100_000_000);
        assert!(r.completed, "{r:?}");
        for i in 0..n {
            assert_eq!(
                m.memory().load_f64(layout.c_base + i),
                3.0 * i as f64,
                "c[{i}]"
            );
        }
    }

    #[test]
    fn vector_add_handles_more_workers_than_elements() {
        let n = 5;
        let (program, layout) = vector_add_kernel(n, 16);
        let mut m = Machine::new(cfg1(), program).unwrap();
        for i in 0..n {
            m.memory_mut().store_f64(layout.a_base + i, 1.0);
            m.memory_mut().store_f64(layout.b_base + i, 1.0);
        }
        m.spawn(0, 0).unwrap();
        let r = m.run(100_000_000);
        assert!(r.completed, "{r:?}");
        for i in 0..n {
            assert_eq!(m.memory().load_f64(layout.c_base + i), 2.0);
        }
    }

    #[test]
    fn reduce_kernel_sums_everything_once() {
        let n = 300;
        let (program, layout) = reduce_kernel(n, 16);
        let mut m = Machine::new(cfg1(), program).unwrap();
        for i in 0..n {
            m.memory_mut()
                .store(layout.data_base + i, (i * i % 97) as u64);
        }
        m.spawn(0, 0).unwrap();
        let r = m.run(200_000_000);
        assert!(r.completed, "{r:?}");
        let expected: u64 = (0..n).map(|i| (i * i % 97) as u64).sum();
        assert_eq!(m.memory().load(layout.sum_addr), expected);
        assert!(m.memory().load(layout.claim_addr) >= n as u64);
    }

    #[test]
    fn pipeline_delivers_all_items() {
        let stages = 6;
        let items = 20;
        let (program, layout) = pipeline_kernel(stages, items);
        let empties: Vec<usize> = (0..=stages).map(|k| layout.chan_base + k).collect();
        let (m, r) = run_kernel(cfg1(), program, &empties);
        // Each of the values 0..items gains +1 per stage.
        let expected: i64 = (0..items).map(|v| v + stages as i64).sum();
        assert_eq!(m.memory().load(layout.sink_addr) as i64, expected);
        assert!(r.stats.sync.blocked > 0, "a pipeline must block somewhere");
    }

    #[test]
    fn single_stream_utilization_is_about_five_percent() {
        // §5/§7: 1 instruction per 21 cycles ⇒ ≈4.8% for ALU-dominated
        // code, lower once memory latency bites.
        let u = measure_utilization(cfg1(), 1, 2000, 8);
        assert!(u < 0.06, "single stream must be ≈5%: {u}");
        assert!(u > 0.02, "but not absurdly low: {u}");
    }

    #[test]
    fn utilization_rises_with_streams() {
        let u1 = measure_utilization(cfg1(), 1, 500, 6);
        let u8 = measure_utilization(cfg1(), 8, 500, 6);
        let u32 = measure_utilization(cfg1(), 32, 500, 6);
        let u96 = measure_utilization(cfg1(), 96, 500, 6);
        assert!(u1 < u8 && u8 < u32 && u32 < u96, "{u1} {u8} {u32} {u96}");
        assert!(u96 > 0.85, "96 streams should near-saturate: {u96}");
    }

    #[test]
    fn parallel_sweep_matches_sequential_measurements() {
        let streams = [1usize, 8, 32];
        let sequential: Vec<f64> = streams
            .iter()
            .map(|&s| measure_utilization(cfg1(), s, 300, 6))
            .collect();
        for n_threads in [1usize, 4] {
            let swept = measure_utilization_sweep(&cfg1(), &streams, 300, 6, n_threads);
            assert_eq!(swept, sequential, "n_threads={n_threads}");
        }
    }

    #[test]
    fn memory_heavy_mixes_need_around_eighty_streams() {
        // §7: "80 concurrent threads are typically required to obtain full
        // utilization of a single Tera MTA processor." For a 50%-memory
        // mix, 32 streams must not be enough and ~80 must come close.
        let u32 = measure_utilization(cfg1(), 32, 400, 1);
        let u80 = measure_utilization(cfg1(), 80, 400, 1);
        assert!(
            u32 < 0.90,
            "32 streams must NOT saturate a memory mix: {u32}"
        );
        assert!(
            u80 > 0.80,
            "≈80 streams must get close to saturation: {u80}"
        );
    }

    #[test]
    fn hot_banking_serializes_memory() {
        // stride 64 (= n_banks) hammers one bank; stride 1 spreads. Same
        // instruction counts, very different cycle counts. (Large memory:
        // the strided footprint is 64×200×6×64 words ≈ 5 M.)
        let big = || MtaConfig {
            mem_words: 1 << 23,
            ..MtaConfig::tera(1)
        };
        let (_, cold) = run_kernel(big(), mem_kernel(64, 200, 1, 4096), &[]);
        let (_, hot) = run_kernel(big(), mem_kernel(64, 200, 64, 4096), &[]);
        assert_eq!(cold.stats.instructions(), hot.stats.instructions());
        assert!(
            hot.cycles as f64 > 1.4 * cold.cycles as f64,
            "hot-banking must serialize: hot={} cold={}",
            hot.cycles,
            cold.cycles
        );
        assert!(hot.stats.memory.bank_queue_cycles > cold.stats.memory.bank_queue_cycles);
        // The histogram must tell the same story: the hot run's waits land
        // in the deep buckets, the cold run's almost all in bucket 0.
        let hot_hist = hot.stats.memory.queue_wait_hist;
        assert!(
            hot_hist[3] + hot_hist[4] > 0,
            "hot-banking must produce deep queue waits: {hot_hist:?}"
        );
        assert!(
            hot.stats.memory.queued_fraction() > cold.stats.memory.queued_fraction(),
            "hot={} cold={}",
            hot.stats.memory.queued_fraction(),
            cold.stats.memory.queued_fraction()
        );
    }

    #[test]
    fn two_processors_speed_up_a_wide_alu_kernel() {
        let wide = |procs: usize| {
            let cfg = MtaConfig {
                mem_words: 1 << 20,
                ..MtaConfig::tera(procs)
            };
            let (_, r) = run_kernel(cfg, alu_kernel(128, 300), &[]);
            r.cycles
        };
        let c1 = wide(1);
        let c2 = wide(2);
        let speedup = c1 as f64 / c2 as f64;
        assert!(
            speedup > 1.6 && speedup < 2.1,
            "2-processor speedup out of range: {speedup} ({c1} vs {c2})"
        );
    }

    #[test]
    fn narrow_kernels_do_not_speed_up_on_two_processors() {
        // 4 streams cannot even fill one processor; a second processor
        // helps little. (The germ of the paper's Table 11 observation.)
        let narrow = |procs: usize| {
            let cfg = MtaConfig {
                mem_words: 1 << 20,
                ..MtaConfig::tera(procs)
            };
            let (_, r) = run_kernel(cfg, alu_kernel(4, 2000), &[]);
            r.cycles
        };
        let c1 = narrow(1);
        let c2 = narrow(2);
        let speedup = c1 as f64 / c2 as f64;
        assert!(speedup < 1.2, "narrow kernel must not scale: {speedup}");
    }

    #[test]
    fn chunked_scan_counts_nonempty_windows() {
        let n_pairs = 60;
        let (program, layout) = chunked_scan_kernel(n_pairs, 20, 16);
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 16,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        // Pairs with even index get a non-empty window.
        let mut expected = 0u64;
        for p in 0..n_pairs {
            let (s, e) = if p % 2 == 0 { (3u64, 9u64) } else { (5, 5) };
            m.memory_mut().store(layout.windows_base + 2 * p, s);
            m.memory_mut().store(layout.windows_base + 2 * p + 1, e);
            if s < e {
                expected += 1;
            }
        }
        m.spawn(0, 0).unwrap();
        let r = m.run(200_000_000);
        assert!(r.completed, "{r:?}");
        assert_eq!(m.memory().load(layout.count_addr), expected);
    }

    #[test]
    fn chunked_scan_reproduces_the_table6_saturation_shape() {
        // Sweep chunks on a fixed 2-processor machine: times must fall
        // ~linearly while streams are scarce and flatten once the streams
        // per processor cover the mix latency — the Table 6 shape.
        let run = |chunks: usize| {
            let (program, layout) = chunked_scan_kernel(192, 30, chunks);
            let mut m = Machine::new(
                MtaConfig {
                    mem_words: 1 << 16,
                    ..MtaConfig::tera(2)
                },
                program,
            )
            .unwrap();
            for p in 0..layout.n_pairs {
                m.memory_mut().store(layout.windows_base + 2 * p, 1);
                m.memory_mut().store(layout.windows_base + 2 * p + 1, 2);
            }
            m.spawn(0, 0).unwrap();
            let r = m.run(2_000_000_000);
            assert!(r.completed, "{chunks} chunks: {r:?}");
            r.cycles as f64
        };
        let t8 = run(8);
        let t32 = run(32);
        let t128 = run(128);
        // Scarce-stream regime: 4x the chunks ≈ 4x faster.
        let early = t8 / t32;
        assert!((3.0..5.0).contains(&early), "early-regime scaling: {early}");
        // Saturation: going from 32 to 128 chunks gains much less than 4x.
        let late = t32 / t128;
        assert!(late < 2.5, "late-regime scaling must flatten: {late}");
        // Overall dynamic range matches Table 6's ~8.4x (386s -> 46s).
        let overall = t8 / t128;
        assert!((4.0..14.0).contains(&overall), "overall range: {overall}");
    }

    #[test]
    fn ray_sweep_computes_running_maxima() {
        let (n_rays, len) = (12usize, 30usize);
        let (program, layout) = ray_sweep_kernel(n_rays, len, 8);
        let mut m = Machine::new(
            MtaConfig {
                mem_words: 1 << 16,
                ..MtaConfig::tera(1)
            },
            program,
        )
        .unwrap();
        let slope = |r: usize, k: usize| ((r * 31 + k * 17) % 100) as f64 - 50.0;
        for r in 0..n_rays {
            for k in 0..len {
                m.memory_mut()
                    .store_f64(layout.slopes_base + r * len + k, slope(r, k));
            }
        }
        m.spawn(0, 0).unwrap();
        let res = m.run(500_000_000);
        assert!(res.completed, "{res:?}");
        for r in 0..n_rays {
            let mut expect = f64::NEG_INFINITY;
            for k in 0..len {
                expect = expect.max(slope(r, k));
                let got = m.memory().load_f64(layout.out_base + r * len + k);
                assert_eq!(got, expect, "ray {r} step {k}");
            }
        }
    }

    #[test]
    fn ray_width_limits_two_processor_speedup_like_table_11() {
        // Few rays: the second processor is nearly useless. Many rays:
        // near-2x. This is the fine-grained Terrain Masking scaling story
        // measured in the cycle simulator.
        let time = |n_rays: usize, procs: usize| {
            let workers = (2 * n_rays).min(256);
            let (program, layout) = ray_sweep_kernel(n_rays, 40, workers);
            let mut m = Machine::new(
                MtaConfig {
                    mem_words: 1 << 18,
                    ..MtaConfig::tera(procs)
                },
                program,
            )
            .unwrap();
            for i in 0..n_rays * 40 {
                m.memory_mut()
                    .store_f64(layout.slopes_base + i, (i % 7) as f64);
            }
            m.spawn(0, 0).unwrap();
            let r = m.run(2_000_000_000);
            assert!(r.completed);
            r.cycles as f64
        };
        let narrow = time(6, 1) / time(6, 2);
        let wide = time(240, 1) / time(240, 2);
        assert!(narrow < 1.35, "6 rays must not scale to 2 procs: {narrow}");
        assert!(wide > 1.6, "240 rays must scale: {wide}");
    }

    #[test]
    fn saturated_alu_cycles_scale_linearly_with_added_work() {
        // Past saturation (>21 streams of ALU), adding workers adds work
        // but no parallelism: cycles grow ≈ linearly with workers.
        let run = |w: usize| {
            let (_, r) = run_kernel(cfg1(), alu_kernel(w, 300), &[]);
            r.cycles as f64
        };
        let ratio = run(84) / run(42);
        assert!((1.7..2.3).contains(&ratio), "expected ~2x, got {ratio}");
    }
}
