//! The Tera MTA memory system: flat, cache-less, bank-interleaved shared
//! memory with a full/empty bit on every word.
//!
//! Words are interleaved across `n_banks` banks (the MTA used 64-way
//! interleaving); each bank services one access per `bank_service` cycles,
//! so hot-banking (e.g. a stride equal to the bank count) serializes while
//! unit-stride traffic spreads evenly. There is no cache anywhere —
//! latency tolerance comes entirely from stream multiplicity, which is the
//! architectural bet the paper evaluates.

/// Per-word synchronization state plus data. Words are born **full** (the
/// MTA convention for ordinary data); synchronization variables are
/// initialized empty explicitly.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u64>,
    full: Vec<bool>,
    n_banks: usize,
    bank_service: u64,
    bank_free_at: Vec<u64>,
    stats: MemStats,
}

/// Number of buckets in [`MemStats::queue_wait_hist`].
pub const QUEUE_WAIT_BUCKETS: usize = 5;

/// Upper bounds (inclusive, in cycles) of the histogram buckets; the last
/// bucket is open-ended.
pub const QUEUE_WAIT_BOUNDS: [u64; QUEUE_WAIT_BUCKETS - 1] = [0, 4, 16, 64];

/// Aggregate memory-system statistics for a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Total accesses that reached a bank.
    pub accesses: u64,
    /// Total cycles accesses spent queued behind busy banks.
    pub bank_queue_cycles: u64,
    /// Histogram of per-access queue waits, in cycles: 0, 1–4, 5–16,
    /// 17–64, 65+. A tail in the high buckets is the hot-banking signature
    /// (e.g. a stride equal to the bank count); uniform traffic lands
    /// almost entirely in bucket 0.
    pub queue_wait_hist: [u64; QUEUE_WAIT_BUCKETS],
}

impl MemStats {
    /// Histogram bucket for a queue wait of `wait` cycles.
    pub fn wait_bucket(wait: u64) -> usize {
        QUEUE_WAIT_BOUNDS
            .iter()
            .position(|&b| wait <= b)
            .unwrap_or(QUEUE_WAIT_BUCKETS - 1)
    }

    /// Fraction of accesses that queued at all (bucket 0 excluded).
    pub fn queued_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.accesses - self.queue_wait_hist[0]) as f64 / self.accesses as f64
        }
    }
}

/// When a scheduled bank access starts service and completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankTiming {
    /// Cycle at which the bank begins servicing the access.
    pub start: u64,
    /// Cycle at which the bank is done (data available at the bank).
    pub done: u64,
}

impl Memory {
    /// A memory of `words` words across `n_banks` banks, each taking
    /// `bank_service` cycles per access. All words start full and zero.
    pub fn new(words: usize, n_banks: usize, bank_service: u64) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        assert!(bank_service > 0, "bank service time must be positive");
        Self {
            data: vec![0; words],
            full: vec![true; words],
            n_banks,
            bank_service,
            bank_free_at: vec![0; n_banks],
            stats: MemStats::default(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the memory has no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bank a word lives in (word-interleaved).
    pub fn bank_of(&self, addr: usize) -> usize {
        addr % self.n_banks
    }

    /// Memory-system statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Check that `addr` is mapped.
    pub fn check(&self, addr: usize) -> Result<(), String> {
        if addr < self.data.len() {
            Ok(())
        } else {
            Err(format!(
                "address {addr} out of range (memory has {} words)",
                self.data.len()
            ))
        }
    }

    /// Schedule a bank access beginning no earlier than `now`; accounts
    /// queueing behind earlier accesses to the same bank.
    pub fn schedule_access(&mut self, addr: usize, now: u64) -> BankTiming {
        let bank = self.bank_of(addr);
        let start = now.max(self.bank_free_at[bank]);
        let done = start + self.bank_service;
        self.bank_free_at[bank] = done;
        let wait = start - now;
        self.stats.accesses += 1;
        self.stats.bank_queue_cycles += wait;
        self.stats.queue_wait_hist[MemStats::wait_bucket(wait)] += 1;
        BankTiming { start, done }
    }

    // ── data access (timing-free; the machine layers timing on top) ─────

    /// Plain load, ignoring the full/empty bit.
    pub fn load(&self, addr: usize) -> u64 {
        self.data[addr]
    }

    /// Plain store, ignoring the full/empty bit.
    pub fn store(&mut self, addr: usize, v: u64) {
        self.data[addr] = v;
    }

    /// Whether the word's full/empty bit is full.
    pub fn is_full(&self, addr: usize) -> bool {
        self.full[addr]
    }

    /// Force the word empty (synchronization-variable initialization).
    pub fn set_empty(&mut self, addr: usize) {
        self.full[addr] = false;
    }

    /// Force the word full.
    pub fn set_full(&mut self, addr: usize) {
        self.full[addr] = true;
    }

    /// Synchronized consuming load: if full, returns the value and sets the
    /// word empty; `None` if the word is empty.
    pub fn try_take(&mut self, addr: usize) -> Option<u64> {
        if self.full[addr] {
            self.full[addr] = false;
            Some(self.data[addr])
        } else {
            None
        }
    }

    /// Synchronized store: if empty, writes the value, sets full, and
    /// returns `true`; `false` if the word is full.
    pub fn try_put_sync(&mut self, addr: usize, v: u64) -> bool {
        if self.full[addr] {
            false
        } else {
            self.data[addr] = v;
            self.full[addr] = true;
            true
        }
    }

    /// Read-and-leave-full: value if full, `None` if empty.
    pub fn try_read_ff(&self, addr: usize) -> Option<u64> {
        if self.full[addr] {
            Some(self.data[addr])
        } else {
            None
        }
    }

    /// Unconditional publish: write and set full.
    pub fn put(&mut self, addr: usize, v: u64) {
        self.data[addr] = v;
        self.full[addr] = true;
    }

    /// Atomic fetch-and-add (wrapping) on a full word; `None` if empty.
    pub fn try_fetch_add(&mut self, addr: usize, delta: u64) -> Option<u64> {
        if self.full[addr] {
            let old = self.data[addr];
            self.data[addr] = old.wrapping_add(delta);
            Some(old)
        } else {
            None
        }
    }

    /// Load a word as an `f64` bit pattern.
    pub fn load_f64(&self, addr: usize) -> f64 {
        f64::from_bits(self.data[addr])
    }

    /// Store an `f64` as its bit pattern.
    pub fn store_f64(&mut self, addr: usize, v: f64) {
        self.data[addr] = v.to_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_start_full_and_zero() {
        let m = Memory::new(16, 4, 2);
        assert_eq!(m.len(), 16);
        for a in 0..16 {
            assert!(m.is_full(a));
            assert_eq!(m.load(a), 0);
        }
    }

    #[test]
    fn bank_interleaving_is_modular() {
        let m = Memory::new(256, 64, 1);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(63), 63);
        assert_eq!(m.bank_of(64), 0);
        assert_eq!(m.bank_of(130), 2);
    }

    #[test]
    fn same_bank_accesses_queue() {
        let mut m = Memory::new(256, 64, 4);
        let t1 = m.schedule_access(0, 100);
        let t2 = m.schedule_access(64, 100); // same bank (0)
        assert_eq!(
            t1,
            BankTiming {
                start: 100,
                done: 104
            }
        );
        assert_eq!(
            t2,
            BankTiming {
                start: 104,
                done: 108
            }
        );
        assert_eq!(m.stats().bank_queue_cycles, 4);
        // One access went straight through, one waited 4 cycles (bucket 1).
        assert_eq!(m.stats().queue_wait_hist, [1, 1, 0, 0, 0]);
    }

    #[test]
    fn different_banks_do_not_queue() {
        let mut m = Memory::new(256, 64, 4);
        let t1 = m.schedule_access(0, 100);
        let t2 = m.schedule_access(1, 100);
        assert_eq!(t1.start, 100);
        assert_eq!(t2.start, 100);
        assert_eq!(m.stats().bank_queue_cycles, 0);
        assert_eq!(m.stats().queue_wait_hist, [2, 0, 0, 0, 0]);
        assert_eq!(m.stats().queued_fraction(), 0.0);
    }

    #[test]
    fn wait_buckets_split_at_documented_bounds() {
        for (wait, bucket) in [
            (0u64, 0usize),
            (1, 1),
            (4, 1),
            (5, 2),
            (16, 2),
            (17, 3),
            (64, 3),
            (65, 4),
            (10_000, 4),
        ] {
            assert_eq!(MemStats::wait_bucket(wait), bucket, "wait={wait}");
        }
    }

    #[test]
    fn hot_banking_fills_the_tail_buckets() {
        // 32 back-to-back accesses to the same bank: wait grows by the
        // 4-cycle service time each access, so the histogram must spread
        // into every bucket, and the queued fraction approaches 1.
        let mut m = Memory::new(256, 64, 4);
        for _ in 0..32 {
            m.schedule_access(0, 0);
        }
        let h = m.stats().queue_wait_hist;
        assert_eq!(h.iter().sum::<u64>(), 32);
        assert!(h[4] > 0, "65+ bucket must be populated: {h:?}");
        assert_eq!(h[0], 1, "only the first access avoids the queue");
        assert!(m.stats().queued_fraction() > 0.9);
    }

    #[test]
    fn take_empties_and_put_sync_fills() {
        let mut m = Memory::new(4, 2, 1);
        m.store(1, 42);
        assert_eq!(m.try_take(1), Some(42));
        assert!(!m.is_full(1));
        assert_eq!(m.try_take(1), None, "second take must block");
        assert!(m.try_put_sync(1, 7));
        assert!(m.is_full(1));
        assert!(!m.try_put_sync(1, 8), "put on full word must block");
        assert_eq!(m.load(1), 7);
    }

    #[test]
    fn read_ff_leaves_full() {
        let mut m = Memory::new(4, 2, 1);
        m.store(2, 9);
        assert_eq!(m.try_read_ff(2), Some(9));
        assert!(m.is_full(2));
        m.set_empty(2);
        assert_eq!(m.try_read_ff(2), None);
    }

    #[test]
    fn fetch_add_returns_old_and_blocks_on_empty() {
        let mut m = Memory::new(4, 2, 1);
        m.store(0, 10);
        assert_eq!(m.try_fetch_add(0, 5), Some(10));
        assert_eq!(m.load(0), 15);
        m.set_empty(0);
        assert_eq!(m.try_fetch_add(0, 5), None);
    }

    #[test]
    fn f64_round_trips() {
        let mut m = Memory::new(4, 2, 1);
        m.store_f64(3, -2.5);
        assert_eq!(m.load_f64(3), -2.5);
    }

    #[test]
    fn bounds_check_reports_address() {
        let m = Memory::new(4, 2, 1);
        assert!(m.check(3).is_ok());
        let e = m.check(4).unwrap_err();
        assert!(e.contains("4"));
    }
}
