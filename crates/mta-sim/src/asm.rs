//! A label-resolving assembler for the simulator IR.
//!
//! Kernels are built by emitting instructions against string labels that
//! are resolved to instruction indices when the program is finished:
//!
//! ```
//! use mta_sim::asm::Assembler;
//! use mta_sim::ir::Instr;
//!
//! let mut a = Assembler::new();
//! a.li(1, 10);                 // r1 = 10 (loop counter)
//! a.label("loop");
//! a.addi(1, 1, -1);            // r1 -= 1
//! a.bne_l(1, 0, "loop");       // while r1 != 0
//! a.halt();
//! let program = a.assemble().unwrap();
//! assert_eq!(program.len(), 4);
//! ```

use crate::ir::{Instr, Program, Reg, Target};
use std::collections::HashMap;

/// A pending instruction: either fully resolved or waiting for a label.
enum Pending {
    Ready(Instr),
    /// Instruction whose `Target` must be patched to `label`'s address.
    Branch {
        make: fn(Target) -> Instr,
        label: String,
    },
    /// Like `Branch` but for two-register branches.
    CondBranch {
        make: fn(Reg, Reg, Target) -> Instr,
        ra: Reg,
        rb: Reg,
        label: String,
    },
    /// Fork whose entry is a label.
    Fork {
        label: String,
        arg: Reg,
    },
}

/// Incremental program builder with named labels.
#[derive(Default)]
pub struct Assembler {
    pending: Vec<Pending>,
    labels: HashMap<String, usize>,
}

impl Assembler {
    /// A fresh, empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (where the next emitted instruction goes).
    pub fn here(&self) -> usize {
        self.pending.len()
    }

    /// Define `name` at the current position. Panics on redefinition.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.here());
        assert!(prev.is_none(), "label {name:?} defined twice");
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.pending.push(Pending::Ready(i));
    }

    // ── ergonomic emitters ───────────────────────────────────────────────

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Instr::Li { rd, imm });
    }

    /// `rd = imm` for an f64 constant (bit pattern).
    pub fn lif(&mut self, rd: Reg, imm: f64) {
        self.emit(Instr::Li {
            rd,
            imm: imm.to_bits() as i64,
        });
    }

    /// `rd = rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::Mov { rd, rs });
    }

    /// `rd = ra + rb`
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::Add { rd, ra, rb });
    }

    /// `rd = ra - rb`
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::Sub { rd, ra, rb });
    }

    /// `rd = ra * rb`
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::Mul { rd, ra, rb });
    }

    /// `rd = ra / rb`
    pub fn div(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::Div { rd, ra, rb });
    }

    /// `rd = ra + imm`
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.emit(Instr::Addi { rd, ra, imm });
    }

    /// `rd = (ra < rb) ? 1 : 0`
    pub fn slt(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::Slt { rd, ra, rb });
    }

    /// f64 add.
    pub fn fadd(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::FAdd { rd, ra, rb });
    }

    /// f64 subtract.
    pub fn fsub(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::FSub { rd, ra, rb });
    }

    /// f64 multiply.
    pub fn fmul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::FMul { rd, ra, rb });
    }

    /// f64 divide.
    pub fn fdiv(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::FDiv { rd, ra, rb });
    }

    /// f64 max.
    pub fn fmax(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::FMax { rd, ra, rb });
    }

    /// f64 min.
    pub fn fmin(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::FMin { rd, ra, rb });
    }

    /// int → f64 convert.
    pub fn itof(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::IToF { rd, rs });
    }

    /// `mem[base+off] = rs` (ordinary).
    pub fn store(&mut self, rs: Reg, base: Reg, off: i64) {
        self.emit(Instr::Store {
            rs,
            base,
            offset: off,
        });
    }

    /// `rd = mem[base+off]` (ordinary).
    pub fn load(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Instr::Load {
            rd,
            base,
            offset: off,
        });
    }

    /// Synchronized consuming load (wait full → set empty).
    pub fn load_sync(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Instr::LoadSync {
            rd,
            base,
            offset: off,
        });
    }

    /// Synchronized store (wait empty → set full).
    pub fn store_sync(&mut self, rs: Reg, base: Reg, off: i64) {
        self.emit(Instr::StoreSync {
            rs,
            base,
            offset: off,
        });
    }

    /// Read-and-leave-full.
    pub fn read_ff(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Instr::ReadFF {
            rd,
            base,
            offset: off,
        });
    }

    /// Unconditional publish (set full).
    pub fn put(&mut self, rs: Reg, base: Reg, off: i64) {
        self.emit(Instr::Put {
            rs,
            base,
            offset: off,
        });
    }

    /// Atomic fetch-and-add.
    pub fn fetch_add(&mut self, rd: Reg, base: Reg, off: i64, rs: Reg) {
        self.emit(Instr::FetchAdd {
            rd,
            base,
            offset: off,
            rs,
        });
    }

    /// Terminate the stream.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    // ── label-taking control flow ────────────────────────────────────────

    /// Unconditional jump to `label`.
    pub fn jmp_l(&mut self, label: &str) {
        self.pending.push(Pending::Branch {
            make: |t| Instr::Jmp { target: t },
            label: label.to_string(),
        });
    }

    /// Branch to `label` if `ra == rb`.
    pub fn beq_l(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.pending.push(Pending::CondBranch {
            make: |ra, rb, t| Instr::Beq { ra, rb, target: t },
            ra,
            rb,
            label: label.to_string(),
        });
    }

    /// Branch to `label` if `ra != rb`.
    pub fn bne_l(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.pending.push(Pending::CondBranch {
            make: |ra, rb, t| Instr::Bne { ra, rb, target: t },
            ra,
            rb,
            label: label.to_string(),
        });
    }

    /// Branch to `label` if `ra < rb` (signed).
    pub fn blt_l(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.pending.push(Pending::CondBranch {
            make: |ra, rb, t| Instr::Blt { ra, rb, target: t },
            ra,
            rb,
            label: label.to_string(),
        });
    }

    /// Branch to `label` if `ra >= rb` (signed).
    pub fn bge_l(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.pending.push(Pending::CondBranch {
            make: |ra, rb, t| Instr::Bge { ra, rb, target: t },
            ra,
            rb,
            label: label.to_string(),
        });
    }

    /// Fork a stream at `label` with `r1 = regs[arg]`.
    pub fn fork_l(&mut self, label: &str, arg: Reg) {
        self.pending.push(Pending::Fork {
            label: label.to_string(),
            arg,
        });
    }

    /// Resolve labels and produce the validated [`Program`].
    pub fn assemble(self) -> Result<Program, String> {
        let resolve = |label: &str| -> Result<Target, String> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| format!("undefined label {label:?}"))
        };
        let code: Result<Vec<Instr>, String> = self
            .pending
            .iter()
            .map(|p| match p {
                Pending::Ready(i) => Ok(*i),
                Pending::Branch { make, label } => Ok(make(resolve(label)?)),
                Pending::CondBranch {
                    make,
                    ra,
                    rb,
                    label,
                } => Ok(make(*ra, *rb, resolve(label)?)),
                Pending::Fork { label, arg } => Ok(Instr::Fork {
                    entry: resolve(label)?,
                    arg: *arg,
                }),
            })
            .collect();
        let program = Program::new(code?);
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.jmp_l("end"); // forward reference
        a.label("loop");
        a.addi(1, 1, 1);
        a.jmp_l("loop"); // backward reference
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.code[0], Instr::Jmp { target: 3 });
        assert_eq!(p.code[2], Instr::Jmp { target: 1 });
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.jmp_l("nowhere");
        assert!(a.assemble().unwrap_err().contains("nowhere"));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new();
        a.label("x");
        a.halt();
        a.label("x");
    }

    #[test]
    fn assemble_validates_the_program() {
        let mut a = Assembler::new();
        a.li(0, 1); // write to r0
        a.halt();
        assert!(a.assemble().unwrap_err().contains("r0"));
    }

    #[test]
    fn fork_label_resolves_to_entry() {
        let mut a = Assembler::new();
        a.fork_l("worker", 2);
        a.halt();
        a.label("worker");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.code[0], Instr::Fork { entry: 2, arg: 2 });
    }

    #[test]
    fn lif_round_trips_f64_constants() {
        let mut a = Assembler::new();
        a.lif(1, 3.5);
        a.halt();
        let p = a.assemble().unwrap();
        match p.code[0] {
            Instr::Li { imm, .. } => assert_eq!(f64::from_bits(imm as u64), 3.5),
            _ => panic!(),
        }
    }
}
