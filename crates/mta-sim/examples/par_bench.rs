//! Wall-clock comparison of the sequential and parallel ticks on
//! multi-processor kernels (release mode; used to pick the `mta_par`
//! harness workload).
use mta_sim::kernels::{chunked_scan_kernel, mixed_kernel};
use mta_sim::{Machine, MtaConfig};
use std::time::Instant;

fn time_run(cfg: &MtaConfig, program: &mta_sim::Program, workers: usize) -> (f64, u64) {
    let mut m = Machine::new(cfg.clone(), program.clone()).unwrap();
    m.spawn(0, 0).unwrap();
    let t = Instant::now();
    let r = if workers == 0 {
        m.run(u64::MAX)
    } else {
        m.run_parallel(u64::MAX, workers)
    };
    assert!(r.completed);
    (t.elapsed().as_secs_f64(), r.cycles)
}

fn main() {
    for procs in [2usize, 4, 8] {
        let cfg = MtaConfig {
            mem_words: 1 << 20,
            ..MtaConfig::tera(procs)
        };
        for (name, program) in [
            ("mixed 256x2000", mixed_kernel(256, 2000, 4, 100_000)),
            ("scan 400x200", chunked_scan_kernel(400, 200, 256).0),
        ] {
            let (t_seq, c1) = time_run(&cfg, &program, 0);
            print!("p{procs} {name}: seq {t_seq:.3}s ({c1} cy)");
            for w in [1usize, 2, 4, 8] {
                let (t_par, c2) = time_run(&cfg, &program, w);
                assert_eq!(c1, c2, "cycle divergence at p{procs} w{w}");
                print!(" | {w}w {:.2}x", t_seq / t_par);
            }
            println!();
        }
    }
}
