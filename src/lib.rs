//! # tera-c3i — facade crate
//!
//! Reproduction of *"An Initial Evaluation of the Tera Multithreaded
//! Architecture and Programming System Using the C3I Parallel Benchmark
//! Suite"* (Brunett, Thornley, Ellenbecker; SC'98).
//!
//! This crate re-exports the public API of every workspace member so
//! examples and downstream users need a single dependency:
//!
//! * [`sthreads`] — structured multithreading runtime (multithreaded
//!   for-loops, futures, full/empty sync variables, op-counting backend),
//! * [`c3i`] — the Threat Analysis and Terrain Masking benchmarks with
//!   sequential, coarse-grained and fine-grained implementations,
//! * [`mta_sim`] — cycle-level Tera MTA simulator,
//! * [`smp_sim`] — cache/bus simulator for the conventional platforms,
//! * [`eval_core`] — calibrated machine models and the experiment harness
//!   that regenerates every table and figure of the paper,
//! * [`autopar`] — the automatic-parallelization (dependence analysis)
//!   model.
//!
//! See `examples/quickstart.rs` for a guided tour and the `repro` binary
//! for the full table/figure reproduction.

pub use autopar;
pub use c3i;
pub use eval_core;
pub use mta_sim;
pub use smp_sim;
pub use sthreads;
