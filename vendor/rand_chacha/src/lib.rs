//! Minimal offline stand-in for `rand_chacha`: a deterministic RNG whose
//! keystream is a genuine ChaCha permutation with 8 rounds.
//!
//! The seed expansion (`seed_from_u64` -> 256-bit key via SplitMix64)
//! matches the spirit, not the bits, of upstream `rand_core`; streams are
//! stable across runs and platforms but not bit-compatible with the real
//! `rand_chacha` crate. All fixtures in this workspace are generated from
//! these streams.

use rand::{RngCore, SeedableRng};

/// ChaCha quarter-round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 8 rounds (4 double-rounds) over `input`, with the
/// feed-forward addition, into `out`.
fn chacha8_block(input: &[u32; 16], out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..4 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic ChaCha-8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

impl ChaCha8Rng {
    fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // state[12..14] = 64-bit block counter, state[14..16] = nonce (zero).
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        chacha8_block(&self.state, &mut self.buf);
        // Advance the 64-bit block counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_crosses_block_boundary() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // 16 words per block; draw 40 words and require plenty of variety.
        let words: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        assert!(distinct.len() > 35);
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
        let n = rng.random_range(0usize..10);
        assert!(n < 10);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u32();
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
