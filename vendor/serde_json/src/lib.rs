//! Minimal offline stand-in for `serde_json`, bridging the vendored
//! `serde` crate's [`Value`] tree to JSON text.
//!
//! Guarantees the workspace relies on:
//! - `u64` values (e.g. `f64::to_bits` bit patterns) round-trip exactly —
//!   integers are never routed through `f64`.
//! - `f64` values use Rust's shortest round-trip `Display` formatting, so
//!   `to_string` -> `from_str` reproduces the same bits for finite values.
//! - Malformed input yields `Err`, never a panic.

use serde::{de::DeserializeOwned, Serialize, Value};

/// JSON (de)serialization error (re-used from the vendored serde core).
pub type Error = serde::Error;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value of type `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent a non-finite number"));
            }
            // Rust's Display for f64 is the shortest round-trip form; add
            // `.0` to keep integral floats recognizable as floats.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            write_items(items.len(), out, indent, level, |i, out, ind, lvl| {
                write_value(&items[i], out, ind, lvl)
            })?;
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            write_items(entries.len(), out, indent, level, |i, out, ind, lvl| {
                let (k, val) = &entries[i];
                write_string(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(val, out, ind, lvl)
            })?;
            out.push('}');
        }
    }
    Ok(())
}

/// Shared layout logic for arrays and objects: separators, newlines, and
/// indentation around `n` items written by `write_item`.
fn write_items(
    n: usize,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(usize, &mut String, Option<usize>, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    if n == 0 {
        return Ok(());
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(i, out, indent, level + 1)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {} of JSON input", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then decode it as UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number text is valid UTF-8");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v: u64 = from_str(&to_string(&18_446_744_073_709_551_615u64).unwrap()).unwrap();
        assert_eq!(v, u64::MAX);
        let f: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(f, 0.1);
        let neg: i64 = from_str(&to_string(&-42i64).unwrap()).unwrap();
        assert_eq!(neg, -42);
        let b: bool = from_str("true").unwrap();
        assert!(b);
    }

    #[test]
    fn f64_bits_survive_via_u64() {
        for f in [
            0.0f64,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let bits = f.to_bits();
            let round: u64 = from_str(&to_string(&bits).unwrap()).unwrap();
            assert_eq!(round, bits, "bits of {f}");
        }
    }

    #[test]
    fn vectors_and_nesting_round_trip() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        let round: Vec<Vec<u64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "line1\nline\"2\"\t\\end\u{1}".to_string();
        let round: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = vec![1u64, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let round: Vec<u64> = from_str(&pretty).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<bool>("{ not json").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn non_finite_floats_refuse_to_serialize() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
