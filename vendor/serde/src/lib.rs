//! Minimal offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, (de)serialization goes through
//! an explicit JSON-shaped [`Value`] tree: `Serialize` renders a value into
//! a `Value`, `Deserialize` rebuilds one from it. The vendored
//! [`serde_json`](../serde_json) crate converts `Value` to and from JSON
//! text. Unsigned integers keep their own variant (`Value::U64`) so `u64`
//! bit patterns — e.g. `f64::to_bits` in the masking file format —
//! round-trip exactly.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the vendored
//! `serde_derive` proc-macro crate, re-exported here under the same names
//! as the traits, matching upstream serde's layout.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped data tree: the interchange format between typed values
/// and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact through the full `u64` range).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of this value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// (De)serialization error: a message, as in `serde::de::Error::custom`.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Render into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: only [`DeserializeOwned`] is needed here, and
/// with a value-tree model every `Deserialize` is already owned.
pub mod de {
    /// Marker for deserialization that does not borrow from the input.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Derive-macro helper: extract and deserialize field `field` of struct
/// `ty` from an object value.
pub fn __field<T: Deserialize>(v: &Value, ty: &str, field: &str) -> Result<T, Error> {
    match v.get(field) {
        Some(inner) => {
            T::from_value(inner).map_err(|e| Error::custom(format!("{ty}.{field}: {e}")))
        }
        None => match v {
            Value::Obj(_) => {
                // Absent key: tolerated for Option fields (-> Null).
                T::from_value(&Value::Null)
                    .map_err(|_| Error::custom(format!("{ty}: missing field `{field}`")))
            }
            other => Err(Error::custom(format!(
                "{ty}: expected object, found {}",
                other.type_name()
            ))),
        },
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected boolean, found {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {}, found {}",
                        $len,
                        other.type_name()
                    ))),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn u64_bit_patterns_are_exact() {
        // f64::to_bits values exceed 2^53 and must not round through f64.
        let bits = f64::INFINITY.to_bits();
        assert_eq!(u64::from_value(&bits.to_value()).unwrap(), bits);
    }

    #[test]
    fn vec_option_tuple_round_trip() {
        let v: Vec<Option<(f64, f64)>> = vec![Some((1.0, 2.0)), None];
        let round: Vec<Option<(f64, f64)>> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(<Vec<u64>>::from_value(&Value::Null).is_err());
        assert!(u32::from_value(&Value::U64(1 << 40)).is_err());
    }

    #[test]
    fn field_lookup_reports_missing_fields() {
        let obj = Value::Obj(vec![("a".into(), Value::U64(1))]);
        assert_eq!(__field::<u64>(&obj, "T", "a").unwrap(), 1);
        assert!(__field::<u64>(&obj, "T", "b")
            .unwrap_err()
            .to_string()
            .contains("missing"));
        // Absent key deserializes as None for Option fields.
        assert_eq!(__field::<Option<u64>>(&obj, "T", "b").unwrap(), None);
    }
}
