//! Minimal offline stand-in for the `parking_lot` crate, backed by
//! `std::sync`. Only the surface this workspace uses is provided:
//! `Mutex` (non-poisoning `lock`, `into_inner`) and `Condvar`
//! (`wait` on a `MutexGuard`, `notify_one`, `notify_all`).
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poisoning):
//! a panic while holding the lock does not prevent other threads from
//! making progress afterwards.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(v) => f.debug_struct("Mutex").field("data", &*v).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard is stored as an `Option` so [`Condvar::wait`] can take the
/// std guard out by value and put the re-acquired one back, matching
/// `parking_lot`'s `wait(&mut guard)` signature without unsafe code.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(reacquired);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, the value is still reachable.
        assert_eq!(*m.lock(), 7);
    }
}
