//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple best-of-N wall-clock
//! timer instead of criterion's statistical machinery. Each benchmark
//! prints one line: its id, the best per-iteration time, and the
//! iteration count used.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), DEFAULT_SAMPLES, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.samples, f);
        self
    }

    /// Finish the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    /// Filled in by `iter`: (best per-iteration time, iterations per sample).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measure `f`, taking the best of several timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes long enough to time reliably.
        let mut iters: u64 = 1;
        let target = Duration::from_millis(5);
        loop {
            let t = time_iters(&mut f, iters);
            if t >= target || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t = time_iters(&mut f, iters);
            if t < best {
                best = t;
            }
        }
        self.result = Some((best / iters as u32, iters));
    }
}

fn time_iters<O, F: FnMut() -> O>(f: &mut F, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

const DEFAULT_SAMPLES: usize = 10;

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((per_iter, iters)) => {
            println!("bench {id:<50} {per_iter:>12.3?}/iter  ({iters} iters/sample)");
        }
        None => println!("bench {id:<50} (no measurement: Bencher::iter not called)"),
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("small_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    fn target(c: &mut Criterion) {
        c.bench_function("macro_target", |b| b.iter(|| black_box(0u8)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        criterion_group!(benches, target);
        benches();
    }
}
