//! Minimal offline stand-in for the `rand` crate (0.9-style API).
//!
//! Provides exactly the surface this workspace uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and uniform sampling over half-open
//! and inclusive integer ranges and half-open `f64` ranges via
//! [`Rng::random_range`]. Generators (e.g. `ChaCha8Rng`) live in their
//! own vendored crates and implement [`RngCore`] + [`SeedableRng`].
//!
//! The integer sampler uses widening-multiply rejection (Lemire), so it
//! is unbiased; the `f64` sampler uses the standard 53-bit mantissa
//! construction over `[0, 1)`. Streams are deterministic per generator
//! but are **not** bit-compatible with the upstream `rand` crate —
//! everything downstream of this workspace regenerates its fixtures
//! from these streams.

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: 32/64-bit uniform words.
pub trait RngCore {
    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32;

    /// Next uniform `u64` (defaults to two `u32` draws, low word first).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b`). Panics if the range is empty.
    fn random_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_uniform(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is used here.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed, expanded internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample a uniform value of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` via widening-multiply rejection.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    // Lemire's method: accept unless the low product word lands in the
    // biased zone `[0, 2^64 mod bound)`.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (a as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits -> [0, 1), then affine map.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64 so every test value differs.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StepRng(1);
        for _ in 0..2000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.random_range(2u32..=4);
            assert!((2..=4).contains(&x));
        }
    }

    #[test]
    fn f64_range_stays_in_bounds_and_varies() {
        let mut rng = StepRng(2);
        let draws: Vec<f64> = (0..100).map(|_| rng.random_range(-1.0..1.0)).collect();
        assert!(draws.iter().all(|v| (-1.0..1.0).contains(v)));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StepRng(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = StepRng(4);
        assert_eq!(rng.random_range(7usize..8), 7);
        assert_eq!(rng.random_range(7usize..=7), 7);
    }
}
