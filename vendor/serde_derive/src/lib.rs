//! Minimal offline stand-in for `serde_derive`: dependency-free
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The generated impls target the vendored `serde` crate's value-tree
//! model (`to_value` / `from_value`), not upstream serde's visitor API.
//! Input is parsed directly from the `proc_macro` token stream (no
//! `syn`/`quote`), which is sufficient for the shapes this workspace
//! declares: named-field structs (optionally with plain type parameters
//! like `Grid<T>`) and enums with unit, newtype, and struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Advance past any `#[...]` attributes (including doc comments).
fn skip_attrs(tts: &[TokenTree], i: &mut usize) {
    while *i < tts.len() && is_punct(&tts[*i], '#') {
        *i += 1;
        if *i < tts.len()
            && matches!(&tts[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

/// Advance past `pub` / `pub(crate)` etc.
fn skip_visibility(tts: &[TokenTree], i: &mut usize) {
    if *i < tts.len() && matches!(&tts[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tts.len()
            && matches!(&tts[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tts: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tts.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

/// Parse `<...>` after the type name, returning the parameter names.
fn parse_generics(tts: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if *i >= tts.len() || !is_punct(&tts[*i], '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut taken = false; // first ident of the current parameter captured?
    let mut in_lifetime = false;
    while *i < tts.len() {
        match &tts[*i] {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return params;
                }
            }
            t if is_punct(t, ',') && depth == 1 => taken = false,
            t if is_punct(t, '\'') => in_lifetime = true,
            TokenTree::Ident(id) => {
                if in_lifetime {
                    in_lifetime = false;
                } else if !taken && depth == 1 {
                    params.push(id.to_string());
                    taken = true;
                }
            }
            _ => {}
        }
        *i += 1;
    }
    panic!("serde derive: unterminated generic parameter list");
}

/// Parse the named fields of a struct body or struct-variant body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        skip_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        skip_visibility(&tts, &mut i);
        let name = expect_ident(&tts, &mut i, "field name");
        assert!(
            i < tts.len() && is_punct(&tts[i], ':'),
            "serde derive: expected `:` after field `{name}` (tuple structs unsupported)"
        );
        i += 1;
        // Skip the type: everything up to the next comma at angle-depth 0.
        let mut depth = 0i32;
        while i < tts.len() {
            if is_punct(&tts[i], '<') {
                depth += 1;
            } else if is_punct(&tts[i], '>') {
                depth -= 1;
            } else if is_punct(&tts[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        skip_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        let name = expect_ident(&tts, &mut i, "variant name");
        let kind = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        while i < tts.len() && !is_punct(&tts[i], ',') {
            i += 1;
        }
        if i < tts.len() {
            i += 1; // consume the comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tts, &mut i);
    skip_visibility(&tts, &mut i);
    let kind = expect_ident(&tts, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tts, &mut i, "type name");
    let generics = parse_generics(&tts, &mut i);
    // Skip an optional where clause: scan forward to the brace body.
    let body = loop {
        match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde derive: type `{name}` has no braced body"),
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    Input {
        name,
        generics,
        shape,
    }
}

/// `impl<T: <bound>> <trait_path> for Name<T>` header.
fn impl_header(input: &Input, trait_path: &str) -> String {
    if input.generics.is_empty() {
        format!("impl {trait_path} for {}", input.name)
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect();
        format!(
            "impl<{}> {trait_path} for {}<{}>",
            bounded.join(", "),
            input.name,
            input.generics.join(", ")
        )
    }
}

fn obj_literal(entries: &[String]) -> String {
    if entries.is_empty() {
        "::serde::Value::Obj(::std::vec::Vec::new())".to_string()
    } else {
        format!(
            "::serde::Value::Obj(::std::vec::Vec::from([{}]))",
            entries.join(", ")
        )
    }
}

fn entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let header = impl_header(&input, "::serde::Serialize");
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            obj_literal(&entries)
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "Self::{0} => ::serde::Value::Str(::std::string::String::from(\"{0}\")),",
                        v.name
                    ),
                    VariantKind::Newtype => format!(
                        "Self::{0}(__f0) => {1},",
                        v.name,
                        obj_literal(&[entry(&v.name, "::serde::Serialize::to_value(__f0)")])
                    ),
                    VariantKind::Struct(fields) => {
                        let inner: Vec<String> = fields
                            .iter()
                            .map(|f| entry(f, &format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        format!(
                            "Self::{0} {{ {1} }} => {2},",
                            v.name,
                            fields.join(", "),
                            obj_literal(&[entry(&v.name, &obj_literal(&inner))])
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         {header} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    code.parse()
        .expect("serde derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let header = impl_header(&input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__v, \"{name}\", \"{f}\")?,"))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(" "))
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => return ::std::result::Result::Ok(Self::{0}),",
                        v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Newtype => Some(format!(
                        "\"{0}\" => return ::std::result::Result::Ok(Self::{0}(\
                         ::serde::Deserialize::from_value(__inner)?)),",
                        v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__field(__inner, \"{name}::{0}\", \"{f}\")?,",
                                    v.name
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{0}\" => return ::std::result::Result::Ok(Self::{0} {{ {1} }}),",
                            v.name,
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            let mut code = String::new();
            if !unit_arms.is_empty() {
                code.push_str(&format!(
                    "if let ::serde::Value::Str(__s) = __v {{\n\
                         match __s.as_str() {{ {} _ => {{}} }}\n\
                     }}\n",
                    unit_arms.join(" ")
                ));
            }
            if !data_arms.is_empty() {
                code.push_str(&format!(
                    "if let ::serde::Value::Obj(__entries) = __v {{\n\
                         if __entries.len() == 1 {{\n\
                             let (__k, __inner) = &__entries[0];\n\
                             match __k.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}\n",
                    data_arms.join(" ")
                ));
            }
            code.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::custom(\
                 \"unrecognized variant for enum {name}\"))"
            ));
            code
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         {header} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    code.parse()
        .expect("serde derive: generated Deserialize impl parses")
}
