//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses — the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `collection::vec`, `any::<T>()`, weighted `prop_oneof!`, and the
//! `proptest!` / `prop_assert*!` / `prop_assume!` macros — with two
//! deliberate simplifications:
//!
//! 1. **Deterministic by construction.** Each test case's RNG is seeded
//!    from a hash of the test name and the case index, so every run (and
//!    every platform) explores the same inputs. There is no persisted
//!    failure file and no environment-dependent entropy.
//! 2. **No shrinking.** On failure the generated inputs are printed
//!    verbatim; with deterministic generation, a failing case replays
//!    exactly under `cargo test`.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64 generator used for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly from a 64-bit value.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via widening multiply; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, build a second strategy from it, and sample that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b as i128 - a as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (a as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A `Vec` of strategies generates a `Vec` of one value from each, in
/// order (used to build fixed-length heterogeneously-parameterized
/// sequences, e.g. one instruction strategy per program slot).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// collection::vec
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// prop_oneof! support
// ---------------------------------------------------------------------------

/// Object-safe generation, so [`Union`] can hold heterogeneous strategies
/// producing the same value type.
pub trait DynGen<V> {
    /// Generate one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynGen<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Weighted union of strategies, as built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, Rc<dyn DynGen<V>>)>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Rc<dyn DynGen<V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, strategy) in &self.arms {
            if pick < *w as u64 {
                return strategy.generate_dyn(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total");
    }
}

/// Erase a strategy's concrete type for use as a [`Union`] arm.
pub fn __arm<S: Strategy + 'static>(strategy: S) -> Rc<dyn DynGen<S::Value>> {
    Rc::new(strategy)
}

/// Pick one of several strategies per generated value, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$(($weight as u32, $crate::__arm($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$((1u32, $crate::__arm($strategy))),+])
    };
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it is retried, not failed.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only the case count is configurable here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

fn seed_for(test_name: &str, case: u64) -> u64 {
    // FNV-1a over the test name, mixed with the case index: stable across
    // runs, platforms, and compiler versions.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Drive one property: run `case` with per-case deterministic RNGs until
/// `config.cases` cases pass; panic on the first failure. `case` returns
/// the outcome plus a rendering of the generated inputs for diagnostics.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let mut passed: u64 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = config.cases as u64 * 20 + 100;
    while passed < config.cases as u64 {
        assert!(
            attempt < max_attempts,
            "proptest `{test_name}`: too many rejected cases \
             ({passed} passed after {attempt} attempts)"
        );
        let mut rng = TestRng::new(seed_for(test_name, attempt));
        attempt += 1;
        match case(&mut rng) {
            (Ok(()), _) => passed += 1,
            (Err(TestCaseError::Reject(_)), _) => {}
            (Err(TestCaseError::Fail(msg)), inputs) => {
                panic!(
                    "proptest `{test_name}` failed at case {attempt}: {msg}\n\
                     failing inputs (deterministic, replayable):\n{inputs}"
                );
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] over deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$config] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$config:expr] $( $(#[$meta:meta])* fn $name:ident(
        $($arg:tt in $strategy:expr),+ $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(__config, stringify!($name), |__rng| {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __value = $crate::Strategy::generate(&($strategy), __rng);
                        __inputs.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), &__value
                        ));
                        let $arg = __value;
                    )+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (__outcome, __inputs)
                });
            }
        )*
    };
}

/// Veto the current case (it is regenerated, not failed) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_and_tuples_compose() {
        let mut rng = TestRng::new(2);
        let s = (1usize..4).prop_flat_map(|n| {
            super::collection::vec(0u64..10, n..n + 1).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let mut rng = TestRng::new(3);
        let strategies: Vec<_> = (0..5).map(|i| (i * 10)..(i * 10 + 1)).collect();
        assert_eq!(strategies.generate(&mut rng), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn oneof_respects_zero_weight_exclusion() {
        let mut rng = TestRng::new(4);
        let s = prop_oneof![
            1 => 0usize..1,
            3 => 10usize..11,
        ];
        let mut saw = [0usize; 2];
        for _ in 0..400 {
            match s.generate(&mut rng) {
                0 => saw[0] += 1,
                10 => saw[1] += 1,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(saw[0] > 0 && saw[1] > saw[0]);
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = TestRng::new(super::seed_for("x", 7));
        let mut b = TestRng::new(super::seed_for("x", 7));
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: generation, assumptions, assertions.
        #[test]
        fn macro_pipeline_works(a in 0u64..50, b in 1u64..50) {
            prop_assume!(a != b);
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "failing inputs")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
