//! Cross-crate correctness: every parallel program variant must produce
//! the sequential program's output on scenarios larger and more varied
//! than the per-crate unit tests use, and the C3IPBS-style output
//! verifiers must accept all of them.

use tera_c3i::c3i::terrain::{self, TerrainScenarioParams};
use tera_c3i::c3i::threat::{self, ThreatScenarioParams};

#[test]
fn threat_analysis_all_variants_agree_on_benchmark_sized_input() {
    let scenario = threat::generate(ThreatScenarioParams {
        n_threats: 1000,
        n_weapons: 10,
        seed: 99,
        ..Default::default()
    });
    let seq = threat::threat_analysis_host(&scenario);
    threat::verify_intervals(&scenario, &seq).expect("sequential verifies");

    for (chunks, threads) in [(4, 4), (64, 4), (256, 8), (1000, 3)] {
        let chunked = threat::threat_analysis_chunked_host(&scenario, chunks, threads);
        assert_eq!(chunked.flatten(), seq, "chunks={chunks} threads={threads}");
    }
    let fine = threat::threat_analysis_fine_host(&scenario, 8);
    assert_eq!(
        threat::canonical(fine.intervals),
        threat::canonical(seq.clone())
    );
}

#[test]
fn threat_analysis_counting_backends_do_not_change_results() {
    let scenario = threat::generate(ThreatScenarioParams {
        n_threats: 120,
        n_weapons: 6,
        seed: 5,
        ..Default::default()
    });
    let seq = threat::threat_analysis_host(&scenario);
    let (counted_chunked, _) = threat::threat_analysis_chunked(&scenario, 16);
    assert_eq!(counted_chunked.flatten(), seq);
    let (counted_fine, _) = threat::threat_analysis_fine(&scenario);
    assert_eq!(
        threat::canonical(counted_fine.intervals),
        threat::canonical(seq.clone())
    );
    let (seq2, _) = threat::threat_analysis_profile(&scenario);
    assert_eq!(seq2, seq);
}

#[test]
fn terrain_masking_all_variants_agree_on_a_large_scenario() {
    let scenario = terrain::generate(TerrainScenarioParams {
        grid_size: 384,
        n_threats: 25,
        seed: 99,
        ..Default::default()
    });
    let seq = terrain::terrain_masking_host(&scenario);
    terrain::verify_masking(&scenario, &seq).expect("sequential verifies");

    for (threads, blocks) in [(1, 10), (4, 10), (8, 1), (3, 25)] {
        let coarse = terrain::terrain_masking_coarse_host(&scenario, threads, blocks);
        assert_eq!(coarse, seq, "threads={threads} blocks={blocks}");
    }
    for threads in [1, 4] {
        assert_eq!(terrain::terrain_masking_fine_host(&scenario, threads), seq);
    }
    let (counted_coarse, _) = terrain::terrain_masking_coarse(&scenario, 4, 10);
    assert_eq!(counted_coarse, seq);
    let (counted_fine, _) = terrain::terrain_masking_fine(&scenario);
    assert_eq!(counted_fine, seq);
}

#[test]
fn edge_scenarios_do_not_break_any_variant() {
    // Threats at the terrain corners (maximally clipped regions).
    let mut scenario = terrain::generate(TerrainScenarioParams {
        grid_size: 96,
        n_threats: 4,
        seed: 3,
        ..Default::default()
    });
    let r = scenario.threats[0].radius;
    scenario.threats[0].x = 0;
    scenario.threats[0].y = 0;
    scenario.threats[1].x = 95;
    scenario.threats[1].y = 95;
    scenario.threats[2].x = 0;
    scenario.threats[2].y = 95;
    scenario.threats[3] = scenario.threats[2];
    scenario.threats[3].x = 95;
    scenario.threats[3].y = 0;
    scenario.threats[3].radius = r.max(48); // bigger than half the grid
    let seq = terrain::terrain_masking_host(&scenario);
    terrain::verify_masking(&scenario, &seq).expect("clipped corners verify");
    assert_eq!(terrain::terrain_masking_coarse_host(&scenario, 4, 10), seq);
    assert_eq!(terrain::terrain_masking_fine_host(&scenario, 4), seq);

    // A threat scenario where no weapon can reach anything.
    let mut ts = threat::small_scenario(8);
    for w in &mut ts.weapons {
        w.max_range = 1.0;
    }
    let seq = threat::threat_analysis_host(&ts);
    assert!(seq.is_empty());
    threat::verify_intervals(&ts, &seq).expect("empty output verifies");
    assert!(threat::threat_analysis_chunked_host(&ts, 8, 4)
        .flatten()
        .is_empty());
    assert!(threat::threat_analysis_fine_host(&ts, 4)
        .intervals
        .is_empty());
}

#[test]
fn overlapping_threat_regions_merge_correctly() {
    // Stack several radars on the same spot: the masking must equal the
    // min of the individual fields, and in particular be dominated by the
    // single-radar field.
    let mut scenario = terrain::generate(TerrainScenarioParams {
        grid_size: 128,
        n_threats: 3,
        seed: 21,
        ..Default::default()
    });
    for t in &mut scenario.threats {
        t.x = 64;
        t.y = 64;
        t.radius = 30;
    }
    scenario.threats[0].mast_height = 5.0;
    scenario.threats[1].mast_height = 15.0;
    scenario.threats[2].mast_height = 25.0;
    let all = terrain::terrain_masking_host(&scenario);
    terrain::verify_masking(&scenario, &all).expect("overlapping regions verify");

    let mut single = scenario.clone();
    single.threats.truncate(1);
    let one = terrain::terrain_masking_host(&single);
    for (x, y, &v) in all.iter_cells() {
        assert!(v <= one[(x, y)] + 1e-12, "min-merge violated at ({x},{y})");
    }
}
