//! Replay every pinned regression under `tests/corpus/` through the full
//! differential matrix.
//!
//! Each entry is a minimized fuzz case (see `crates/c3i-fuzz`) pinned
//! alongside the fix for the bug it exposed. Entries that encode
//! once-crashing malformed inputs must now be `Rejected` gracefully;
//! valid entries must pass the oracle-vs-variants check bit-for-bit. Any
//! `Failed` outcome here is a regression.
//!
//! To pin a new entry: run `repro --fuzz N --fuzz-seed S`, fix the bug it
//! finds, then copy the minimized JSON it writes under `target/c3i-fuzz/`
//! into `tests/corpus/` (see README "Differential fuzzing").

use c3i_fuzz::{load_case, run_case, CaseOutcome};
use std::path::Path;

#[test]
fn corpus_entries_replay_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 4,
        "corpus unexpectedly small ({} entries) — was it checked out?",
        entries.len()
    );

    // Pin the steal-victim RNG so Stealing-schedule replays are stable.
    sthreads::set_steal_seed(1);
    let mut failures = Vec::new();
    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let case = load_case(path).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        match run_case(&case) {
            CaseOutcome::Passed | CaseOutcome::Rejected(_) => {}
            CaseOutcome::Failed(f) => failures.push(format!("{name}: {f}")),
        }
    }
    sthreads::set_steal_seed(0);
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_malformed_entries_are_rejected_not_panicking() {
    // The two pinned malformed entries exercise the validation gates that
    // replaced panics/hangs; they must stay on the Rejected path.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for (name, needle) in [
        ("terrain-off-grid-threat.json", "outside"),
        ("threat-huge-launch-time.json", "timeline"),
    ] {
        let case = load_case(dir.join(name)).unwrap();
        match run_case(&case) {
            CaseOutcome::Rejected(msg) => {
                assert!(msg.contains(needle), "{name}: unexpected rejection: {msg}")
            }
            other => panic!("{name}: expected Rejected, got {other:?}"),
        }
    }
}
