//! Cross-crate validation: the analytic machine models in `eval-core`
//! must agree with the cycle-level simulators (`mta-sim`, `smp-sim`) on
//! the mechanisms they abstract. This is what justifies using the
//! analytic models for the full benchmark-scale tables.

use tera_c3i::eval_core::models::TeraModel;
use tera_c3i::mta_sim::kernels::{measure_utilization_sweep, mixed_kernel, run_kernel};
use tera_c3i::mta_sim::MtaConfig;
use tera_c3i::smp_sim::{CacheConfig, CpuConfig, SmpConfig, SmpMachine, TracePattern};
use tera_c3i::sthreads::OpCounts;

fn tera_model() -> TeraModel {
    TeraModel {
        clock_mhz: 255.0,
        issue_latency: 21.0,
        mem_latency: 70.0,
        streams_per_processor: 128,
        eta2: 1.0,
        network_words_per_cycle: 16.0,
        spawn_cycles_per_task: 0.0,
    }
}

#[test]
fn mta_utilization_model_matches_simulator_across_stream_counts() {
    // mixed_kernel(_, _, alu_per_iter=3): 5 instructions/iteration, one a
    // load => model latency L = (4*21 + 70)/5.
    let model = tera_model();
    let mix = OpCounts {
        int_ops: 4,
        loads: 1,
        ..OpCounts::default()
    };
    let l = model.avg_latency(&mix);
    assert!((l - (4.0 * 21.0 + 70.0) / 5.0).abs() < 1e-9);

    let streams = [1usize, 2, 4, 8, 16, 24];
    let cfg = MtaConfig {
        mem_words: 1 << 20,
        ..MtaConfig::tera(1)
    };
    let sims = measure_utilization_sweep(&cfg, &streams, 600, 3, 4);
    for (&s, sim) in streams.iter().zip(sims) {
        let predicted = (s as f64 / l).min(1.0);
        let err = (sim - predicted).abs() / predicted;
        assert!(
            err < 0.08,
            "utilization mismatch at {s} streams: sim {sim:.3} vs model {predicted:.3}"
        );
    }
    // Saturation region: the model says 1.0; the simulator should be
    // within a few percent (fork/drain edges).
    let saturated = [64usize, 96, 128];
    for (&s, sim) in saturated
        .iter()
        .zip(measure_utilization_sweep(&cfg, &saturated, 600, 3, 4))
    {
        assert!(
            sim > 0.93,
            "saturated utilization too low at {s} streams: {sim}"
        );
    }
}

#[test]
fn utilization_sweep_is_deterministic_and_load_independent() {
    // The sweep's numbers come from simulated cycle counts, never from
    // host wall-clock, so they must not depend on how many host threads
    // run the sweep or on how loaded the machine is. Guard that: the same
    // sweep, sequentially and with contending host threads, twice.
    let cfg = MtaConfig {
        mem_words: 1 << 20,
        ..MtaConfig::tera(1)
    };
    let streams = [1usize, 8, 32, 64];
    let sequential = measure_utilization_sweep(&cfg, &streams, 300, 3, 1);
    for n_threads in [2usize, 8] {
        let parallel = measure_utilization_sweep(&cfg, &streams, 300, 3, n_threads);
        assert_eq!(parallel, sequential, "n_threads={n_threads}");
    }
    assert_eq!(
        measure_utilization_sweep(&cfg, &streams, 300, 3, 1),
        sequential,
        "repeat run"
    );
}

#[test]
fn mta_sequential_cpi_matches_model_latency() {
    // A single stream running the mixed kernel: simulated cycles per
    // instruction must equal the model's average latency.
    let program = mixed_kernel(1, 2000, 3, 100_000);
    let (_, r) = run_kernel(
        MtaConfig {
            mem_words: 1 << 20,
            ..MtaConfig::tera(1)
        },
        program,
        &[],
    );
    let cpi = r.cycles as f64 / r.stats.instructions() as f64;
    let mix = OpCounts {
        int_ops: 4,
        loads: 1,
        ..OpCounts::default()
    };
    let l = tera_model().avg_latency(&mix);
    assert!(
        (cpi - l).abs() / l < 0.05,
        "single-stream CPI {cpi:.2} vs model latency {l:.2}"
    );
}

#[test]
fn mta_two_processor_scaling_is_near_ideal_in_the_simulator() {
    // The cycle simulator has no network-immaturity model, so a wide
    // kernel scales ~2x; the calibrated eta2 < 1 in eval-core accounts for
    // the difference the paper attributes to the prototype network. This
    // test documents that the DIFFERENCE comes from calibration, not from
    // the simulator.
    let run = |procs: usize| {
        let p = mixed_kernel(256, 200, 3, 100_000);
        let (_, r) = run_kernel(
            MtaConfig {
                mem_words: 1 << 20,
                ..MtaConfig::tera(procs)
            },
            p,
            &[],
        );
        r.cycles as f64
    };
    let speedup = run(1) / run(2);
    assert!(
        speedup > 1.85 && speedup < 2.05,
        "simulator 2-proc speedup: {speedup}"
    );
}

#[test]
fn smp_bus_saturation_justifies_the_conventional_bus_term() {
    // The ConventionalModel charges aggregate streaming traffic against a
    // bus with fixed cycles per stream op. The smp-sim machine must show
    // the same signature: with enough streaming processors, makespan is
    // set by total traffic, not per-processor work.
    let cfg = |n: usize| SmpConfig {
        n_cpus: n,
        cpu: CpuConfig {
            cache: CacheConfig {
                words: 4096,
                line_words: 4,
                ways: 4,
            },
            hit_cycles: 1,
            miss_extra_cycles: 30,
        },
        bus_per_transaction: 12,
    };
    let total_words = 48_000usize;
    let run = |n: usize| {
        let traces: Vec<Vec<tera_c3i::smp_sim::Op>> = (0..n)
            .map(|p| {
                TracePattern::Stream {
                    base: p * 1_000_000,
                    words: total_words / n,
                    stride: 1,
                    compute_per_access: 2,
                    write: false,
                }
                .generate()
            })
            .collect();
        SmpMachine::new(cfg(n)).run(&traces)
    };
    let r8 = run(8);
    let r16 = run(16);
    // Bus-bound regime: doubling processors buys almost nothing.
    let gain = r8.makespan() as f64 / r16.makespan() as f64;
    assert!(
        gain < 1.25,
        "bus-bound makespan should barely improve: {gain}"
    );
    // And the makespan is close to the bus service time of all misses.
    let misses: u64 = r16.cache_stats.iter().map(|&(_, m, _)| m).sum();
    let bus_time = misses * 12;
    let ratio = r16.makespan() as f64 / bus_time as f64;
    assert!(
        (0.9..1.3).contains(&ratio),
        "makespan {} vs pure bus time {bus_time}",
        r16.makespan()
    );
}

#[test]
fn smp_cache_residency_justifies_the_two_class_cost_model() {
    // The conventional model charges resident ops ~1 cost and streaming
    // ops a miss-amortized cost. Validate the split: a resident loop hits
    // >95%, a streaming sweep misses at the line rate.
    let cpu = CpuConfig {
        cache: CacheConfig {
            words: 8192,
            line_words: 4,
            ways: 4,
        },
        hit_cycles: 1,
        miss_extra_cycles: 30,
    };
    let resident = TracePattern::ResidentLoop {
        base: 0,
        block_words: 2048,
        rounds: 20,
        compute_per_access: 1,
    }
    .generate();
    let streaming = TracePattern::Stream {
        base: 0,
        words: 40_000,
        stride: 1,
        compute_per_access: 1,
        write: false,
    }
    .generate();
    let run = |trace: Vec<tera_c3i::smp_sim::Op>| {
        let mut m = SmpMachine::new(SmpConfig {
            n_cpus: 1,
            cpu,
            bus_per_transaction: 8,
        });
        m.run(&[trace])
    };
    let hr_resident = run(resident).hit_rate();
    let hr_stream = run(streaming).hit_rate();
    assert!(hr_resident > 0.95, "resident hit rate {hr_resident}");
    assert!(
        (hr_stream - 0.75).abs() < 0.02,
        "streaming hit rate should be 1 - 1/line_words: {hr_stream}"
    );
}
