//! Regression oracle for the harness's own parallelization: measuring the
//! workload and generating the tables across host threads must produce
//! **byte-identical** results to the sequential path — the same
//! "parallelization must not change program output" bar the paper holds
//! its benchmark parallelizations to, applied to our measurement harness.

use std::sync::OnceLock;
use tera_c3i::eval_core::{Experiments, Workload, WorkloadScale};
use tera_c3i::sthreads::Schedule;

/// The sequential oracle: one worker, measured once per test binary.
fn oracle() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| Workload::build_with(WorkloadScale::Reduced, 1, Schedule::Dynamic))
}

#[test]
fn parallel_workload_measurement_equals_sequential_oracle() {
    // Full-struct equality covers every OpCounts of every scenario
    // (OpCounts is integer-only, so == is exact, not approximate).
    for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Stealing] {
        for n_threads in [1usize, 2, 8] {
            let w = Workload::build_with(WorkloadScale::Reduced, n_threads, schedule);
            assert_eq!(
                &w,
                oracle(),
                "workload diverged at {schedule:?} x {n_threads} threads"
            );
        }
    }
}

#[test]
fn parallel_table_generation_is_byte_identical() {
    let exps = Experiments::new(oracle().clone());
    let render = |tables: &[tera_c3i::eval_core::Table]| {
        tables
            .iter()
            .map(|t| format!("{}\n{}", t.render(), t.to_csv()))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let sequential = render(&exps.all_tables_with_threads(1));
    for n_threads in [2usize, 8] {
        let parallel = render(&exps.all_tables_with_threads(n_threads));
        assert_eq!(
            parallel, sequential,
            "table output diverged at {n_threads} threads"
        );
    }
}

#[test]
fn default_build_equals_explicit_sequential_build() {
    // `Workload::build` picks the host thread count and dynamic
    // scheduling; whatever it picked, the result must equal the oracle.
    let w = Workload::build(WorkloadScale::Reduced);
    assert_eq!(&w, oracle());
}
