//! End-to-end reproduction test: measure the workload, calibrate, and
//! check every table and figure against the paper's published numbers at
//! the fidelity the reproduction claims (anchors exact; predictions
//! within stated bands; qualitative findings all present).

use std::sync::OnceLock;
use tera_c3i::eval_core::experiments::{paper, Figure};
use tera_c3i::eval_core::{Experiments, Table, WorkloadScale};

fn exps() -> &'static Experiments {
    static E: OnceLock<Experiments> = OnceLock::new();
    // Snapshot-cached (eval_core::cache): only the first test binary to
    // run after a measurement-code change pays for re-measurement.
    E.get_or_init(|| Experiments::load_or_measure(WorkloadScale::Reduced).0)
}

fn worst_error(t: &Table) -> f64 {
    t.referenced_values()
        .iter()
        .map(|&(m, p)| ((m - p) / p).abs())
        .fold(0.0, f64::max)
}

fn mean_error(t: &Table) -> f64 {
    let v = t.referenced_values();
    v.iter().map(|&(m, p)| ((m - p) / p).abs()).sum::<f64>() / v.len() as f64
}

#[test]
fn every_table_meets_its_fidelity_band() {
    let e = exps();
    // (table, worst-case band, mean band) — anchors tight, predictions
    // looser, Table 10's mid-range is the paper's own noisiest data.
    let bands: Vec<(Table, f64, f64)> = vec![
        (e.table2(), 0.01, 0.01),
        (e.table3(), 0.10, 0.05),
        (e.table4(), 0.15, 0.08),
        (e.table5(), 0.15, 0.10),
        (e.table6(), 0.25, 0.12),
        (e.table7(), 0.15, 0.08),
        (e.table8(), 0.01, 0.01),
        (e.table9(), 0.10, 0.06),
        (e.table10(), 0.45, 0.15),
        (e.table11(), 0.12, 0.08),
        (e.table12(), 0.25, 0.10),
    ];
    for (t, worst_band, mean_band) in bands {
        let w = worst_error(&t);
        let m = mean_error(&t);
        assert!(
            w <= worst_band && m <= mean_band,
            "{} out of band: worst {w:.3} (<= {worst_band}), mean {m:.3} (<= {mean_band})\n{}",
            t.id,
            t.render()
        );
    }
}

#[test]
fn qualitative_findings_of_section7_all_hold() {
    let e = exps();
    let ta = e.ta_seq_secs();
    let tm = e.tm_seq_secs();

    // "Sequential execution on the Tera MTA was approximately 5 times
    // slower than ... a 200 MHz Pentium Pro."
    let vs_ppro_ta = ta[3] / ta[1];
    let vs_ppro_tm = tm[3] / tm[1];
    assert!(
        (4.0..8.0).contains(&vs_ppro_ta),
        "TA Tera/PPro {vs_ppro_ta}"
    );
    assert!(
        (4.0..8.0).contains(&vs_ppro_tm),
        "TM Tera/PPro {vs_ppro_tm}"
    );

    // "6 times slower than a 500 MHz Alpha for the relatively memory-bound
    // program and 15 times slower for the relatively compute-bound one."
    let vs_alpha_ta = ta[3] / ta[0];
    let vs_alpha_tm = tm[3] / tm[0];
    assert!(
        (11.0..17.0).contains(&vs_alpha_ta),
        "TA Tera/Alpha {vs_alpha_ta}"
    );
    assert!(
        (5.0..8.0).contains(&vs_alpha_tm),
        "TM Tera/Alpha {vs_alpha_tm}"
    );
    assert!(
        vs_alpha_ta > vs_alpha_tm,
        "compute-bound code suffers more on the Tera"
    );

    // "multithreaded execution on a single-processor Tera was between 2
    // and 3.5 times faster than sequential execution on the Alpha".
    let mt1_ta = e.ta_tera(256, 1);
    let mt1_tm = e.tm_tera(1);
    assert!(
        (1.7..4.0).contains(&(ta[0] / mt1_ta)),
        "TA Tera(1)/Alpha {}",
        ta[0] / mt1_ta
    );
    assert!(
        (1.7..4.0).contains(&(tm[0] / mt1_tm)),
        "TM Tera(1)/Alpha {}",
        tm[0] / mt1_tm
    );

    // "the performance of one Tera MTA processor is approximately
    // equivalent to four Exemplar processors" (Threat Analysis).
    let ex4 = e.ta_conv_parallel(&e.cal.exemplar, 4);
    assert!(
        (0.6..1.4).contains(&(mt1_ta / ex4)),
        "Tera(1)/Exemplar(4): {}",
        mt1_ta / ex4
    );

    // "the dual-processor Tera is approximately equivalent to eight
    // Exemplar processors" (Terrain Masking).
    let ex8 = e.tm_conv_parallel(&e.cal.exemplar, 8);
    let tera2 = e.tm_tera(2);
    assert!(
        (0.6..1.4).contains(&(tera2 / ex8)),
        "Tera(2)/Exemplar(8): {}",
        tera2 / ex8
    );

    // "speedups of 1.4 and 1.8 on two processors".
    let s_ta = e.ta_tera(256, 1) / e.ta_tera(256, 2);
    let s_tm = e.tm_tera(1) / e.tm_tera(2);
    assert!((1.5..1.9).contains(&s_ta), "TA 2-proc speedup {s_ta}");
    assert!((1.2..1.6).contains(&s_tm), "TM 2-proc speedup {s_tm}");

    // "The program requires hundreds of threads to execute efficiently."
    let t8 = e.ta_tera(8, 2);
    let t256 = e.ta_tera(256, 2);
    assert!(t8 / t256 > 5.0, "8 chunks vs 256: {}", t8 / t256);
}

#[test]
fn figure_curves_have_the_papers_shapes() {
    let e = exps();
    // Figure 2: near-linear.
    let (m2, p2) = e.figure_series(Figure::ThreatExemplar);
    assert!(m2.last().unwrap().1 > 13.0);
    assert_eq!(m2.len(), p2.len());
    // Figure 4: saturating well below linear, flat tail.
    let (m4, _) = e.figure_series(Figure::TerrainExemplar);
    let s8 = m4[7].1;
    let s16 = m4[15].1;
    assert!(s16 < 8.0, "Figure 4 must saturate: {s16}");
    assert!(
        s16 - s8 < 2.0,
        "Figure 4 tail must be flat: s8={s8} s16={s16}"
    );
    // Figure 1 vs Figure 3: TA scales better than TM on the same machine.
    let (m1, _) = e.figure_series(Figure::ThreatPPro);
    let (m3, _) = e.figure_series(Figure::TerrainPPro);
    assert!(m1.last().unwrap().1 > m3.last().unwrap().1);
}

#[test]
fn automatic_parallelization_rows_equal_sequential_rows() {
    let e = exps();
    // Table 7/12's "Automatic" rows are the sequential times — tied to
    // the autopar model actually rejecting the loops.
    assert!(e.autopar_report().all_rejected_for_benchmarks());
    let t7 = e.table7();
    let vals = t7.referenced_values();
    // rows 2 & 4 are Exemplar None/Automatic — identical by construction.
    assert_eq!(vals[2].0, vals[4].0);
}

#[test]
fn csv_export_round_trips_all_values() {
    let e = exps();
    for t in e.all_tables() {
        let csv = t.to_csv();
        assert!(csv.lines().count() > t.rows.len());
        for (m, _) in t.referenced_values() {
            assert!(
                csv.contains(&format!("{m:.3}")),
                "{}: model value {m} missing from CSV",
                t.id
            );
        }
    }
}

#[test]
fn paper_constants_match_the_tables_in_the_text() {
    // Guard against typos in the transcribed paper data.
    assert_eq!(paper::TABLE2[3].1, 2584.0);
    assert_eq!(paper::TABLE6[0], (8, 386.0));
    assert_eq!(paper::TABLE4[15], (16, 22.0));
    assert_eq!(paper::TABLE10[9], (10, 34.0));
    assert_eq!(paper::TABLE11[1], (2, 34.0));
    assert_eq!(paper::TABLE3_SEQ, 458.0);
    assert_eq!(paper::TABLE9_SEQ, 197.0);
}
